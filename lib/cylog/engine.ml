type open_id = Event.open_id

type origin = Main | Game_path of string | Game_payoff of string

type open_tuple = {
  id : open_id;
  statement : int;
  label : string option;
  relation : string;
  bound : Reldb.Tuple.t;
  open_attrs : string list;
  asked : Reldb.Value.t option;
  existence : bool;
  repeatable : bool;
  created_at : int;
}

(* The event vocabulary lives in {!Event} (a leaf module, so the campaign
   monitor can fold over it from below); re-exported here with type
   equations so [Engine.Inserted] etc. keep working unchanged. *)
type effect = Event.effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list
  | Open_created of open_id
  | No_effect
  | Vote_recorded of open_id * int
  | Dead_lettered of open_id * Lease.reason
  | Adaptive_resolved of { open_id : open_id; posterior_pct : int; escalated : bool }
  | Resolved of open_id
  | Sampled of { round : int }
  | Alert_fired of { round : int; alert : Event.alert }

type event = Event.event = {
  clock : int;
  statement : int;
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;
  effects : effect list;
  by_human : Reldb.Value.t option;
}

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* --- Typed answer rejections ------------------------------------------------ *)

type reject =
  | Stale of open_id
  | Not_lease_holder
  | Wrong_question
  | Already_voted
  | Wrong_attrs of { expected : string list; given : string list }
  | Type_mismatch of { attr : string; value : Reldb.Value.t }

let reject_to_string = function
  | Stale id -> Printf.sprintf "no pending open tuple with id %d" id
  | Not_lease_holder -> "the task is leased or designated to another worker"
  | Wrong_question -> "value answer to an existence question (or vice versa)"
  | Already_voted -> "this worker already voted on the task"
  | Wrong_attrs { expected; _ } ->
      Printf.sprintf "the answer must bind exactly %s" (String.concat ", " expected)
  | Type_mismatch { attr; value } ->
      Printf.sprintf "value %s has the wrong type for attribute %s"
        (Reldb.Value.to_string value) attr

let pp_reject ppf r = Format.pp_print_string ppf (reject_to_string r)

(* Stable, space-free identifiers for metric-key suffixes (unlike the
   prose of [reject_to_string]/[Lease.reason_to_string]). *)
let reject_key = function
  | Stale _ -> "stale"
  | Not_lease_holder -> "not_lease_holder"
  | Wrong_question -> "wrong_question"
  | Already_voted -> "already_voted"
  | Wrong_attrs _ -> "wrong_attrs"
  | Type_mismatch _ -> "type_mismatch"

let reason_key = function
  | Lease.Timed_out -> "timed_out"
  | Lease.Rejected_answers _ -> "rejected_answers"
  | Lease.Declined -> "declined"

(* --- Quorum (redundant assignment + aggregation) --------------------------- *)

type aggregate = (string * Reldb.Value.t list) list -> (string * Reldb.Value.t) list

type quorum = { k : int; relations : string list option; aggregate : aggregate }

type quorum_policy =
  | Fixed of int
  | Adaptive of { tau : float; min_votes : int; max_votes : int }

(* The installed policy. [quorum] above stays the {!set_quorum} surface
   (unchanged since the quorum runtime landed); internally both setters
   normalise to this record, with [Fixed k] reproducing the historical
   fixed-redundancy behaviour bit for bit. *)
type quorum_state = {
  qs_policy : quorum_policy;
  qs_relations : string list option;
  qs_aggregate : aggregate;  (* Fixed resolution, and Adaptive fallback *)
}

let policy_cap = function Fixed k -> k | Adaptive a -> a.max_votes

(* Plurality per attribute, ties toward the earliest-voted value — the
   built-in fallback when no Quality.Aggregate-backed hook is installed
   (and the aggregation replayed by {!restore}). *)
let default_aggregate votes =
  List.map
    (fun (attr, vs) ->
      let counts = ref [] in
      List.iter
        (fun v ->
          match List.assoc_opt v !counts with
          | Some c -> counts := (v, c + 1) :: List.remove_assoc v !counts
          | None -> counts := !counts @ [ (v, 1) ])
        vs;
      let winner =
        List.fold_left
          (fun best (v, c) ->
            match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
          None !counts
      in
      ( attr,
        match winner with
        | Some (v, _) -> v
        | None -> Reldb.Value.Null ))
    votes

type vote = Vote_values of (string * Reldb.Value.t) list | Vote_exists of bool

(* --- Journal (checkpoint/replay) ------------------------------------------- *)

(* Every externally-triggered mutation is journaled; a snapshot is the
   program plus this journal, and [restore] replays it through the public
   API — determinism of the engine makes the replayed trace identical. *)
type jentry =
  | J_run of int
  | J_step
  | J_supply of open_id * Reldb.Value.t * (string * Reldb.Value.t) list
  | J_answer of open_id * Reldb.Value.t * bool
  | J_decline of open_id
  | J_assign of open_id * Reldb.Value.t * int
  | J_reclaim of int
  | J_add_statement of Ast.statement
  | J_set_lease of Lease.config option
  | J_set_quorum of (quorum_policy * string list option) option
  | J_set_monitor of Monitor.config option
  | J_sample of int  (* monitor round-boundary sample *)

(* Fold state for deriving metrics from the event journal: each open id's
   creation clock (for the age-at-dead-letter histogram) and the value
   ballots banked so far on pending quorum tasks (for the agreement rate
   computed when the task resolves). The engine keeps one instance in sync
   with its live registry; [metrics_of_events] rebuilds a fresh one. *)
type count_state = {
  cs_created : (open_id, int) Hashtbl.t;
  cs_ballots : (open_id, (string * Reldb.Value.t) list list) Hashtbl.t;
      (* reverse arrival order *)
}

let fresh_count_state () =
  { cs_created = Hashtbl.create 64; cs_ballots = Hashtbl.create 16 }

(* Debug instrumentation: enable with Logs.Src.set_level on "cylog.engine". *)
let log_src = Logs.Src.create "cylog.engine" ~doc:"CyLog evaluation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* What the last delta scan of a statement did — surfaced by EXPLAIN. *)
type delta_mode =
  | Delta_idle  (* no new facts, nothing to do *)
  | Delta_differential  (* consumed only appended rows (new-facts joins) *)
  | Delta_rederived  (* a watched counter moved: scoped re-derivation *)

(* Which change counter a delta statement watches on one body relation.
   Relations read positively are invalidated only by destructive
   mutations (appends flow through the frontier instead); relations
   negated in the prefix invalidate on any change — even a pure append
   can flip a negation that was checked at discovery time. *)
type watch_kind = Watch_destructions | Watch_generation

(* First-class delta state of one statement: a ΔR frontier per positive
   body atom plus the instances discovered but not yet fired. [pending]
   is kept sorted by {!Eval.support_key}, so its head is always the
   conflict-resolution winner — exactly the instance naive rescan would
   fire next; delta and rescan evaluation are therefore trace-identical,
   not merely fixpoint-equivalent. [watch] snapshots one change counter
   per body relation (see {!watch_kind}); when a watched counter moves
   the statement drops its state and re-derives from row zero — a reset
   scoped to the statements reading the mutated relation, never a global
   rescan. *)
type delta_state = {
  mutable frontiers : int array;  (* per positive atom: processed watermark *)
  mutable pending : Eval.matched list;  (* discovered, unfired; key-ascending *)
  mutable watch : int array;  (* last-seen counter per watch_rel; [||] = fresh *)
  (* Last-scan evidence for EXPLAIN's delta view. *)
  mutable last_new : int array;  (* per atom: rows consumed as the delta atom *)
  mutable last_discovered : int;
  mutable last_mode : delta_mode;
}

type stmt_info = {
  stmt : Ast.statement;
  origin : origin;
  prefix : Ast.literal list;
  tail : Ast.literal list;
  pos_preds : string list;  (* positive-atom relations, in body order *)
  body_rels : string list;
  watch_rels : (string * watch_kind) list;  (* per body relation, deduped *)
  payoff_dedup : bool;  (* unordered-support memo (game payoff rules) *)
  mutable exhausted_gen : int;  (* -1: never fully enumerated *)
  (* Compiled join plans, cached against the per-relation statistics
     epochs of the body ({!Planner.stats_key}): a supply into a relation
     outside the body never evicts them, and appends into a body relation
     only do when its cardinality bucket moves. Rescan uses one plan; a
     delta scan pins each atom in turn to a single row, so it keeps one
     plan per pinned position. *)
  mutable rescan_plan : Planner.t option;
  mutable rescan_plan_key : int array;
  mutable delta_plans : Planner.t array;
  mutable delta_plans_key : int array;
  delta : delta_state option;
      (* Seminaive evaluation for every statement with at least one
         positive atom (when the engine runs with [use_delta]): instead of
         re-enumerating the whole join per step, only combinations
         involving a row above some atom's frontier are discovered, merged
         into [pending] by support key and fired one per step. Statements
         over relations that /update or /delete statements target stay
         differential between destructive mutations and re-derive (scoped
         to themselves) when one lands. Fact and filter-only statements
         ([pos_preds = []]) use the rescan path. *)
}

type t = {
  db : Reldb.Database.t;
  builtins : Builtin.registry;
  use_delta : bool;
  use_planner : bool;
  mutable infos : stmt_info array;
  fired : (string, unit) Hashtbl.t;
  open_tbl : (open_id, open_tuple) Hashtbl.t;
  mutable open_order : open_id list;  (* reverse creation order *)
  mutable next_open : open_id;
  mutable clock : int;
  mutable events : event list;  (* reverse chronological *)
  path_rels : (string, string list) Hashtbl.t;  (* path relation -> params *)
  views : Ast.view list;
  program : Ast.program;  (* as loaded, for snapshots *)
  mutable leases : Lease.t option;  (* None: lease runtime off *)
  mutable quorum : quorum_state option;
  reputation : Quality.Model.t;
      (* online per-worker reliability, learnt from agreement with quorum
         resolutions; derived state — rebuilt identically by journal
         replay, never serialised *)
  votes : (open_id, (Reldb.Value.t * vote) list) Hashtbl.t;  (* reverse *)
  mutable dead : (open_tuple * Lease.reason) list;  (* reverse *)
  mutable journal : jentry list;  (* reverse chronological *)
  tel : Telemetry.t;
  counting : count_state;
      (* per-open-id fold state (creation clocks, banked ballots) that
         keeps the live registry equal to a recount over [events] *)
  task_spans : (open_id, Telemetry.handle) Hashtbl.t;
      (* span id of each pending task's "task" span (tracing only), so
         lease/vote/resolve spans can parent to it across steps *)
  mutable monitor : Monitor.t option;
      (* campaign monitor; derived state — [set_monitor] backfills it
         from [events] and restore/recovery rebuild it the same way,
         never from serialised bytes *)
  mutable wal : Journal.t option;  (* durable WAL sink; None = volatile *)
  mutable wal_compact_pending : bool;
      (* a compaction was requested mid-entry; it runs at the start of
         the NEXT journaled entry, when the requesting one is fully
         applied (see [wal_append]) *)
  use_analysis : bool;  (* budget-certificate cross-check on/off *)
  mutable analysis_cache : (Analysis.certificate * int option) option;
      (* the program's certificate under the installed quorum policy and
         its finite total-answer bound (None = not statically finite);
         derived state — recomputed on demand, invalidated by
         [add_statement] and [install_quorum], never serialised *)
}

(* --- Durable journal (WAL) -------------------------------------------------- *)

(* Materialised engine state, the payload of WAL genesis and compaction
   records: every closure-free field is marshalled directly, so restoring
   from a compacted journal costs O(live state), not O(journal length).
   Closure-bearing state — builtins, statement plans and delta frontiers,
   the quorum aggregate, telemetry — is rebuilt by [restore_state]. The
   fired memo rides along, so the rebuilt delta state re-derives without
   re-firing and the continued trace stays byte-identical. *)
type state_payload = {
  st_use_delta : bool;
  st_use_planner : bool;
  st_program : Ast.program;
  st_db : Reldb.Database.t;
  st_fired : (string, unit) Hashtbl.t;
  st_open_tbl : (open_id, open_tuple) Hashtbl.t;
  st_open_order : open_id list;  (* reverse creation order, as stored *)
  st_next_open : open_id;
  st_clock : int;
  st_events : event list;  (* chronological *)
  st_leases : Lease.t option;
  st_quorum : (quorum_policy * string list option) option;
      (* the policy is data; the aggregate closure is resubstituted *)
  st_reputation : Quality.Model.t;
  st_votes : (open_id, (Reldb.Value.t * vote) list) Hashtbl.t;
  st_dead : (open_tuple * Lease.reason) list;
  st_journal : jentry list;  (* chronological *)
}

(* Flags [] reject closures at marshal time — a safety net against a
   closure-bearing field sneaking into the payload. *)
let state_string t =
  Marshal.to_string
    {
      st_use_delta = t.use_delta;
      st_use_planner = t.use_planner;
      st_program = t.program;
      st_db = t.db;
      st_fired = t.fired;
      st_open_tbl = t.open_tbl;
      st_open_order = t.open_order;
      st_next_open = t.next_open;
      st_clock = t.clock;
      st_events = List.rev t.events;
      st_leases = t.leases;
      st_quorum = Option.map (fun qs -> (qs.qs_policy, qs.qs_relations)) t.quorum;
      st_reputation = t.reputation;
      st_votes = t.votes;
      st_dead = t.dead;
      st_journal = List.rev t.journal;
    }
    []

let wal_append t (e : jentry) =
  match t.wal with
  | None -> ()
  | Some j ->
      if t.wal_compact_pending then begin
        (* Deferred from the previous entry: its effects are now fully
           applied and [e] is not yet journaled, so the state is a
           consistent cut. Compacting inside [e]'s own append would
           snapshot a state that excludes an entry already in the WAL,
           and recovery would skip that entry's effects. *)
        t.wal_compact_pending <- false;
        Journal.compact j (state_string t)
      end;
      Journal.append j (Marshal.to_string (e : jentry) []);
      if Journal.wants_compaction j then t.wal_compact_pending <- true

let journal t e =
  wal_append t e;
  t.journal <- e :: t.journal

let attach_journal t j =
  t.wal <- Some j;
  t.wal_compact_pending <- false;
  Journal.set_telemetry j t.tel ~clock:(fun () -> t.clock)

let journal_start ?config ?storage t dir =
  let j = Journal.create ?config ?storage ~genesis:(state_string t) dir in
  attach_journal t j

let durable_journal t = t.wal

(* Between public calls the engine is always at a consistent cut (every
   journaled entry's effects are fully applied), so compacting here is
   safe in exactly the way the deferred path above is. *)
let compact_journal t =
  match t.wal with
  | None -> ()
  | Some j ->
      t.wal_compact_pending <- false;
      Journal.compact j (state_string t)

let path_relation_name game = "Path@" ^ game

(* --- Game-aspect desugaring -------------------------------------------- *)

let rewrite_atom game params (atom : Ast.atom) =
  if atom.pred <> "Path" then atom
  else
    {
      Ast.pred = path_relation_name game;
      args = List.map (fun p -> { Ast.attr = p; bind = Ast.Auto }) params @ atom.args;
    }

let rewrite_literal game params (l : Ast.literal) =
  match l.Ast.lit with
  | Ast.Pos a -> { l with Ast.lit = Ast.Pos (rewrite_atom game params a) }
  | Ast.Neg a -> { l with Ast.lit = Ast.Neg (rewrite_atom game params a) }
  | Ast.Cmp _ | Ast.Call _ -> l

let rewrite_head game params (h : Ast.head) =
  match h.Ast.head with
  | Ast.Head_atom { atom; kind } ->
      { h with Ast.head = Ast.Head_atom { atom = rewrite_atom game params atom; kind } }
  | Ast.Head_payoff _ -> h

let rewrite_statement game params (s : Ast.statement) =
  {
    s with
    Ast.heads = List.map (rewrite_head game params) s.heads;
    body = List.map (rewrite_literal game params) s.body;
  }

let effective_statements (program : Ast.program) =
  let main = List.map (fun s -> (s, Main)) program.statements in
  let per_game (g : Ast.game_decl) =
    List.map
      (fun s -> (rewrite_statement g.game_name g.game_params s, Game_path g.game_name))
      g.path_rules
    @ List.map
        (fun s ->
          (rewrite_statement g.game_name g.game_params s, Game_payoff g.game_name))
        g.payoff_rules
  in
  main @ List.concat_map per_game program.games

(* --- Schema inference ---------------------------------------------------- *)

let add_attr seen order pred attr =
  let key = (pred, attr) in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.replace seen key ();
    let prev = try Hashtbl.find order pred with Not_found -> [] in
    Hashtbl.replace order pred (attr :: prev)
  end

let declare_relations db (program : Ast.program) statements path_rels =
  let seen = Hashtbl.create 64 and order = Hashtbl.create 16 in
  let scan_atom (a : Ast.atom) =
    List.iter (fun (arg : Ast.arg) -> add_attr seen order a.pred arg.attr) a.args
  in
  let scan_literal (l : Ast.literal) =
    match l.Ast.lit with
    | Ast.Pos a | Ast.Neg a -> scan_atom a
    | Ast.Cmp _ | Ast.Call _ -> ()
  in
  let scan_head (h : Ast.head) =
    match h.Ast.head with
    | Ast.Head_atom { atom; _ } -> scan_atom atom
    | Ast.Head_payoff _ -> ()
  in
  (* Path relations start with their Skolem parameters plus the bookkeeping
     columns of Figure 6. *)
  Hashtbl.iter
    (fun rel params ->
      List.iter (add_attr seen order rel) params;
      add_attr seen order rel "order";
      add_attr seen order rel "date")
    path_rels;
  List.iter
    (fun ((s : Ast.statement), _) ->
      List.iter scan_head s.heads;
      List.iter scan_literal s.body)
    statements;
  (* Explicit declarations win. *)
  let explicit = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.schema_decl) ->
      Hashtbl.replace explicit d.rel_name ();
      let attrs = List.map (fun (a, _, _) -> a) d.rel_attrs in
      let key = List.filter_map (fun (a, k, _) -> if k then Some a else None) d.rel_attrs in
      let autos = List.filter_map (fun (a, _, au) -> if au then Some a else None) d.rel_attrs in
      let auto_increment = match autos with [] -> None | [ a ] -> Some a | _ ->
        runtime_error "relation %s declares several auto attributes" d.rel_name
      in
      try ignore (Reldb.Database.declare db (Reldb.Schema.make ~key ?auto_increment ~name:d.rel_name attrs))
      with Invalid_argument m -> runtime_error "%s" m)
    program.schemas;
  (* Payoff bookkeeping. *)
  if not (Hashtbl.mem explicit "Payoff") then
    ignore
      (Reldb.Database.declare db
         (Reldb.Schema.make ~key:[ "player" ] ~name:"Payoff" [ "player"; "score" ]));
  Hashtbl.replace explicit "Payoff" ();
  (* Inferred relations: set semantics, no key; path relations auto-number
     their [order] column. *)
  Hashtbl.iter
    (fun pred rev_attrs ->
      if not (Hashtbl.mem explicit pred) then begin
        let attrs = List.rev rev_attrs in
        let auto_increment = if Hashtbl.mem path_rels pred then Some "order" else None in
        try ignore (Reldb.Database.declare db (Reldb.Schema.make ?auto_increment ~name:pred attrs))
        with Invalid_argument m -> runtime_error "%s" m
      end)
    order

(* --- Loading -------------------------------------------------------------- *)

let make_info ~use_delta ((s : Ast.statement), origin) =
  let prefix, tail = Eval.split_tail s.body in
  let pos_preds =
    List.filter_map
      (fun (l : Ast.literal) ->
        match l.Ast.lit with Ast.Pos a -> Some a.Ast.pred | _ -> None)
      prefix
  in
  let body_rels = Ast.body_preds s.body in
  (* Relations negated before the last positive atom are checked during
     discovery, so any change to them (not just a destructive one) must
     reset the delta state; tail negations re-check at fire time and need
     no watch beyond destructions. *)
  let prefix_negs =
    List.filter_map
      (fun (l : Ast.literal) ->
        match l.Ast.lit with Ast.Neg a -> Some a.Ast.pred | _ -> None)
      prefix
  in
  let watch_rels =
    List.map
      (fun r ->
        (r, if List.mem r prefix_negs then Watch_generation else Watch_destructions))
      body_rels
  in
  let n_atoms = List.length pos_preds in
  {
    stmt = s;
    origin;
    prefix;
    tail;
    pos_preds;
    body_rels;
    watch_rels;
    payoff_dedup =
      (match origin with Game_payoff _ -> true | Main | Game_path _ -> false);
    exhausted_gen = -1;
    rescan_plan = None;
    rescan_plan_key = [||];
    delta_plans = [||];
    delta_plans_key = [||];
    delta =
      (if use_delta && pos_preds <> [] then
         Some
           {
             frontiers = Array.make n_atoms 0;
             pending = [];
             watch = [||];
             last_new = Array.make n_atoms 0;
             last_discovered = 0;
             last_mode = Delta_idle;
           }
       else None);
  }

let load ?builtins ?(use_delta = true) ?(use_planner = true) ?(lint = `Strict)
    ?(analysis = true) ?journal ?journal_config (program : Ast.program) =
  (match lint with
  | `Off -> ()
  | `Strict | `Warn -> (
      let diags = Lint.check program in
      match lint with
      | `Strict when Lint.has_errors diags -> raise (Lint.Rejected diags)
      | _ ->
          List.iter
            (fun (d : Lint.diagnostic) ->
              Logs.warn (fun m -> m "lint: %s" (Lint.render d)))
            diags));
  let builtins = match builtins with Some b -> b | None -> Builtin.default () in
  let path_rels = Hashtbl.create 4 in
  List.iter
    (fun (g : Ast.game_decl) ->
      Hashtbl.replace path_rels (path_relation_name g.game_name) g.game_params)
    program.games;
  let statements = effective_statements program in
  let db = Reldb.Database.create () in
  declare_relations db program statements path_rels;
  let infos = Array.of_list (List.map (make_info ~use_delta) statements) in
  let t =
    {
      db;
    builtins;
    use_delta;
    use_planner;
    infos;
    fired = Hashtbl.create 1024;
    open_tbl = Hashtbl.create 64;
    open_order = [];
    next_open = 1;
    clock = 0;
    events = [];
    path_rels;
    views = program.views;
    program;
    leases = None;
    quorum = None;
    reputation = Quality.Model.create ();
    votes = Hashtbl.create 16;
    dead = [];
    journal = [];
    tel = Telemetry.create ();
    counting = fresh_count_state ();
    task_spans = Hashtbl.create 16;
    monitor = None;
    wal = None;
    wal_compact_pending = false;
    use_analysis = analysis;
    analysis_cache = None;
    }
  in
  (match journal with
  | Some dir -> journal_start ?config:journal_config t dir
  | None -> ());
  t

let database t = t.db
let statements t = Array.to_list (Array.map (fun i -> (i.stmt, i.origin)) t.infos)

(* --- Incremental statements (REPL support) --------------------------------- *)

let declare_for_statement t (s : Ast.statement) =
  let atoms =
    List.filter_map
      (fun (h : Ast.head) ->
        match h.Ast.head with
        | Ast.Head_atom { atom; _ } -> Some atom
        | Ast.Head_payoff _ -> None)
      s.heads
    @ List.filter_map
        (fun (l : Ast.literal) ->
          match l.Ast.lit with
          | Ast.Pos a | Ast.Neg a -> Some a
          | Ast.Cmp _ | Ast.Call _ -> None)
        s.body
  in
  List.iter
    (fun (atom : Ast.atom) ->
      match Reldb.Database.find t.db atom.pred with
      | Some rel ->
          let schema = Reldb.Relation.schema rel in
          List.iter
            (fun (arg : Ast.arg) ->
              if not (Reldb.Schema.has_attribute schema arg.attr) then
                runtime_error
                  "relation %s has no attribute %s (schemas are fixed once declared)"
                  atom.pred arg.attr)
            atom.args
      | None ->
          let attrs =
            List.fold_left
              (fun acc (arg : Ast.arg) ->
                if List.mem arg.attr acc then acc else acc @ [ arg.attr ])
              [] atom.args
          in
          ignore (Reldb.Database.declare t.db (Reldb.Schema.make ~name:atom.pred attrs)))
    atoms

let add_statement t (s : Ast.statement) =
  journal t (J_add_statement s);
  declare_for_statement t s;
  (* New /update or /delete targets need no special handling: delta
     statements reading the affected relations watch their destruction
     counters and re-derive themselves when a mutation actually lands. *)
  t.infos <- Array.append t.infos [| make_info ~use_delta:t.use_delta (s, Main) |];
  t.analysis_cache <- None

let builtins t = t.builtins
let clock t = t.clock
let events t = List.rev t.events
let event_count t = List.length t.events

(* [t.events] is newest-first: the events after cursor [after] are its
   first [length - after] elements, re-reversed to chronological order —
   the campaign server's resolve-poll cursor walks the log this way
   without rescanning the prefix it has already consumed. *)
let events_since t ~after =
  let n = List.length t.events - after in
  if n <= 0 then []
  else
    let rec take k acc = function
      | e :: rest when k > 0 -> take (k - 1) (e :: acc) rest
      | _ -> acc
    in
    take n [] t.events

(* --- Telemetry --------------------------------------------------------------- *)

let telemetry t = t.tel
let metrics t = Telemetry.metrics t.tel
let set_sink t sink = Telemetry.set_sink t.tel sink

let stmt_key label statement =
  match label with Some l -> l | None -> string_of_int statement

(* The one event-counting fold. [record_event] applies it to the live
   registry and [metrics_of_events] to a fresh one, so "the live counters
   match a recount over the journal" holds by construction. [st] carries
   each open id's creation clock forward to its dead-letter event (for the
   age histogram) and each pending quorum task's value ballots forward to
   its resolution (for the agreement rate). *)
let count_event st m (ev : event) =
  let module M = Telemetry.Metrics in
  M.incr m "engine.events";
  (match ev.by_human with
  | Some w ->
      M.incr m "answers.accepted";
      M.incr m ("answers.accepted.worker." ^ Reldb.Value.to_display w)
  | None ->
      if ev.fired then begin
        M.incr m "engine.fired";
        M.incr m ("engine.fired.rule." ^ stmt_key ev.label ev.statement)
      end
      else if ev.effects = [] then M.incr m "engine.tail_filtered");
  let votes = ref 0 and others = ref 0 and voted_id = ref None in
  List.iter
    (fun eff ->
      match eff with
      | Inserted _ ->
          incr others;
          M.incr m "db.inserted"
      | Updated _ ->
          incr others;
          M.incr m "db.updated"
      | Deleted (_, n) ->
          incr others;
          M.incr m ~by:n "db.deleted_rows"
      | Awarded _ ->
          incr others;
          M.incr m "payoff.awards"
      | Open_created id ->
          incr others;
          Hashtbl.replace st.cs_created id ev.clock;
          M.incr m "open.created"
      | Vote_recorded (id, _) ->
          incr votes;
          voted_id := Some id;
          M.incr m "quorum.votes"
      | Dead_lettered (id, reason) ->
          M.incr m "open.dead_lettered";
          M.incr m ("open.dead_lettered.reason." ^ reason_key reason);
          (match Hashtbl.find_opt st.cs_created id with
          | Some c -> M.observe m "open.age_at_dead_letter" (ev.clock - c)
          | None -> ());
          Hashtbl.remove st.cs_ballots id
      | Adaptive_resolved { posterior_pct; escalated; _ } ->
          (* The resolution evidence rides in the event itself, so the
             adaptive counters and the posterior histogram recount exactly
             from the journal like every other quorum metric. *)
          M.incr m (if escalated then "quorum.escalated" else "quorum.early_stopped");
          M.observe m "quorum.posterior_at_resolution" posterior_pct
      | Resolved _ ->
          incr others;
          M.incr m "open.resolved"
      | Sampled _ -> M.incr m "monitor.samples"
      | Alert_fired { alert; _ } ->
          (* Like [Adaptive_resolved], the verdict rides in the event:
             the recount reads alerts back instead of re-deciding them. *)
          M.incr m "monitor.alerts";
          M.incr m ("monitor.alerts." ^ Event.alert_key alert)
      | No_effect -> incr others)
    ev.effects;
  match !voted_id with
  | Some id when !others = 0 ->
      (* A vote was banked and the task stays pending: remember the ballot
         (existence votes carry no valuation and are skipped). *)
      if ev.valuation <> [] then
        Hashtbl.replace st.cs_ballots id
          (ev.valuation :: Option.value (Hashtbl.find_opt st.cs_ballots id) ~default:[])
  | Some id ->
      (* The quorum task resolved: the same event banked its final vote and
         applied (or explicitly skipped) the aggregated answer. For value
         tasks [ev.valuation] is the chosen tuple, so the banked ballots
         yield the agreement rate: the share of earlier per-attribute votes
         that match the final choice. (Existence ballots are not journaled
         per voter, so existence tasks contribute no agreement sample.) *)
      M.incr m "quorum.resolved";
      (match (ev.valuation, Hashtbl.find_opt st.cs_ballots id) with
      | (_ :: _ as chosen), Some ballots ->
          let agree = ref 0 and total = ref 0 in
          List.iter
            (fun ballot ->
              List.iter
                (fun (attr, v) ->
                  match List.assoc_opt attr ballot with
                  | Some b ->
                      Stdlib.incr total;
                      if Reldb.Value.equal b v then Stdlib.incr agree
                  | None -> ())
                chosen)
            ballots;
          M.incr m ~by:!agree "quorum.votes_agreeing";
          M.incr m ~by:(!total - !agree) "quorum.votes_disagreeing";
          if !total > 0 then
            M.observe m "quorum.agreement_pct" (100 * !agree / !total)
      | _ -> ());
      Hashtbl.remove st.cs_ballots id
  | None -> ()

let metrics_of_events events =
  let m = Telemetry.Metrics.create () in
  let st = fresh_count_state () in
  List.iter (count_event st m) events;
  m

let journal_derived_prefixes =
  [
    "engine.events";
    "engine.fired";
    "engine.tail_filtered";
    "answers.accepted";
    "db.";
    "open.";
    "payoff.";
    "quorum.";
    "monitor.";
  ]

let journal_derived name =
  List.exists
    (fun p ->
      String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    journal_derived_prefixes

(* --- Memoisation ----------------------------------------------------------- *)

let fingerprint idx info (support : (string * int * int) list) =
  let support = if info.payoff_dedup then List.sort compare support else support in
  let buf = Buffer.create 32 in
  Buffer.add_string buf (string_of_int idx);
  List.iter
    (fun (pred, row, version) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf pred;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int row);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int version))
    support;
  Buffer.contents buf

let body_generation t info =
  List.fold_left
    (fun acc rel ->
      match Reldb.Database.find t.db rel with
      | Some r -> acc + Reldb.Relation.generation r
      | None -> acc)
    0 info.body_rels

(* --- Join plans -------------------------------------------------------------- *)

(* Per-relation statistics key the plan caches are validated against:
   one epoch per body relation, so a supply into an unrelated relation
   never evicts a plan, and appends into a body relation only do when
   they move its cardinality bucket (or after a destructive mutation). *)
let plan_key t info = Planner.stats_key t.db info.body_rels

(* The cached rescan plan for [info]. Returns [None] when planning is off
   or the plan is the left-to-right order anyway (enumeration can then
   keep its early-stop discipline). *)
let rescan_plan t info ~key =
  if not t.use_planner then None
  else begin
    (match info.rescan_plan with
    | Some _ when info.rescan_plan_key = key ->
        Telemetry.Metrics.incr (Telemetry.metrics t.tel) "planner.rescan_cache.hits"
    | _ ->
        Telemetry.Metrics.incr (Telemetry.metrics t.tel) "planner.rescan_cache.misses";
        info.rescan_plan <- Some (Planner.plan t.db info.prefix);
        info.rescan_plan_key <- key);
    match info.rescan_plan with
    | Some p when not p.Planner.identity -> Some p
    | Some _ | None -> None
  end

(* Per-pinned-atom plans for a delta scan: scanning new rows of atom [i]
   evaluates the body with atom [i] pinned to one row, so each position
   gets its own plan with that atom costed at a single row. *)
let delta_plans t info ~n_atoms =
  if not t.use_planner then None
  else begin
    let key = plan_key t info in
    if info.delta_plans_key <> key || Array.length info.delta_plans <> n_atoms then begin
      Telemetry.Metrics.incr (Telemetry.metrics t.tel) "planner.delta_cache.misses";
      info.delta_plans <-
        Array.init n_atoms (fun i -> Planner.plan ~exact_atom:i t.db info.prefix);
      info.delta_plans_key <- key
    end
    else Telemetry.Metrics.incr (Telemetry.metrics t.tel) "planner.delta_cache.hits";
    Some info.delta_plans
  end

(* --- Head application -------------------------------------------------------- *)

let relation_of t pred =
  match Reldb.Database.find t.db pred with
  | Some r -> r
  | None -> runtime_error "relation %s was never declared" pred

let eval_head_args t env (atom : Ast.atom) =
  (* Partition head arguments into evaluable bindings and open slots. *)
  List.fold_left
    (fun (bound, opens) (arg : Ast.arg) ->
      let expr = match arg.bind with Ast.Auto -> Ast.Var arg.attr | Ast.Bound e -> e in
      match Eval.try_eval_expr t.builtins env expr with
      | Some v -> ((arg.attr, v) :: bound, opens)
      | None -> (bound, arg.attr :: opens))
    ([], []) atom.args
  |> fun (bound, opens) -> (List.rev bound, List.rev opens)

let stamp_path_date t pred bound =
  (* Path tables record when each action happened (Figure 6). *)
  if Hashtbl.mem t.path_rels pred && not (List.mem_assoc "date" bound) then
    ("date", Reldb.Value.Int t.clock) :: bound
  else bound

let insert_tuple t pred bound =
  let rel = relation_of t pred in
  let bound = stamp_path_date t pred bound in
  match Reldb.Relation.insert rel (Reldb.Tuple.of_list bound) with
  | Reldb.Relation.Inserted i -> (
      match Reldb.Relation.row rel i with
      | Some tuple -> Inserted (pred, tuple)
      | None -> No_effect)
  | Reldb.Relation.Duplicate_tuple _ | Reldb.Relation.Duplicate_key _ -> No_effect

let update_tuple t pred bound =
  let rel = relation_of t pred in
  let schema = Reldb.Relation.schema rel in
  let key = Reldb.Schema.key schema in
  List.iter
    (fun k ->
      if not (List.mem_assoc k bound) then
        runtime_error "update of %s does not determine key attribute %s" pred k)
    key;
  (* /update only overwrites the attributes the head mentions; the rest of
     an existing tuple is preserved (Figure 16's tape-extension rule relies
     on this). *)
  let merged =
    match Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list bound) with
    | Some (_, existing) ->
        List.fold_left (fun acc (a, v) -> Reldb.Tuple.set acc a v) existing bound
    | None -> Reldb.Tuple.of_list bound
  in
  match Reldb.Relation.update rel merged with
  | Reldb.Relation.Replaced i | Reldb.Relation.Upserted i -> (
      match Reldb.Relation.row rel i with
      | Some tuple -> Updated (pred, tuple)
      | None -> No_effect)
  | Reldb.Relation.Unchanged _ -> No_effect

let delete_tuples t pred bound =
  let rel = relation_of t pred in
  let n = Reldb.Relation.delete_where rel (fun tuple -> Reldb.Tuple.matches tuple bound) in
  Deleted (pred, n)

let award_payoffs t env updates =
  let rel = relation_of t "Payoff" in
  let deltas =
    List.map
      (fun (player_var, delta_expr) ->
        let player =
          match Binding.find env player_var with
          | Some v -> v
          | None -> runtime_error "payoff player variable %s is unbound" player_var
        in
        let delta = Eval.eval_expr t.builtins env delta_expr in
        (player, delta))
      updates
  in
  List.iter
    (fun (player, delta) ->
      let current =
        match Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list [ ("player", player) ]) with
        | Some (_, tuple) -> (
            match Reldb.Tuple.get_or_null tuple "score" with
            | Reldb.Value.Null -> Reldb.Value.Int 0
            | v -> v)
        | None -> Reldb.Value.Int 0
      in
      let score =
        try Reldb.Value.add current delta
        with Invalid_argument m -> runtime_error "payoff accumulation: %s" m
      in
      ignore
        (Reldb.Relation.update rel
           (Reldb.Tuple.of_list [ ("player", player); ("score", score) ])))
    deltas;
  Awarded deltas

let create_open t idx (info : stmt_info) env (atom : Ast.atom) worker_expr bound opens =
  let asked =
    match worker_expr with
    | Some e -> Some (Eval.eval_expr t.builtins env e)
    | None -> None
  in
  (* Auto-increment attributes are machine-assigned at insertion time, not
     asked of the worker; an unmentioned auto key also makes the question a
     standing task (each answer yields a distinct tuple). *)
  let auto =
    Reldb.Schema.auto_increment (Reldb.Relation.schema (relation_of t atom.pred))
  in
  let opens, repeatable =
    match auto with
    | Some a when List.mem a opens -> (List.filter (fun x -> x <> a) opens, true)
    | Some _ | None -> (opens, false)
  in
  let id = t.next_open in
  t.next_open <- t.next_open + 1;
  let open_tuple =
    {
      id;
      statement = idx;
      label = info.stmt.Ast.label;
      relation = atom.pred;
      bound = Reldb.Tuple.of_list bound;
      open_attrs = opens;
      asked;
      existence = opens = [];
      repeatable;
      created_at = t.clock;
    }
  in
  Hashtbl.replace t.open_tbl id open_tuple;
  t.open_order <- id :: t.open_order;
  Telemetry.Metrics.set_gauge (Telemetry.metrics t.tel) "open.pending"
    (Hashtbl.length t.open_tbl);
  if Telemetry.tracing t.tel then begin
    (* A zero-width "task" span, nested under the creating rule's span;
       later lease/vote/resolve spans parent to it by id. *)
    let h =
      Telemetry.enter t.tel "task"
        ~attrs:[ ("open", string_of_int id); ("relation", atom.pred) ]
        ~clock:t.clock
    in
    Telemetry.exit t.tel h ~clock:t.clock;
    Hashtbl.replace t.task_spans id h
  end;
  Open_created id

let apply_head t idx info env (head : Ast.head) =
  match head.Ast.head with
  | Ast.Head_payoff updates -> award_payoffs t env updates
  | Ast.Head_atom { atom; kind } -> (
      let bound, opens = eval_head_args t env atom in
      match kind with
      | Ast.Assert ->
          if opens <> [] then
            runtime_error "statement %s: head %s has unbound attributes %s (use /open)"
              (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
              atom.pred (String.concat ", " opens)
          else insert_tuple t atom.pred bound
      | Ast.Open worker -> create_open t idx info env atom worker bound opens
      | Ast.Update ->
          if opens <> [] then
            runtime_error "update of %s leaves attributes %s unbound" atom.pred
              (String.concat ", " opens)
          else update_tuple t atom.pred bound
      | Ast.Delete -> delete_tuples t atom.pred bound)

(* --- Budget certificate (Analysis) ----------------------------------------- *)

let analysis_policy t =
  match t.quorum with
  | None -> Analysis.no_policy
  | Some qs ->
      { Analysis.votes = policy_cap qs.qs_policy; scope = qs.qs_relations }

(* The program as the analysis should see it now: the loaded source plus
   every statement added incrementally since (the [Main]-origin infos are
   exactly those, unrewritten; game rules re-desugar from the decls). *)
let analysis_program t =
  let main =
    List.filter_map
      (fun i -> match i.origin with Main -> Some i.stmt | _ -> None)
      (Array.to_list t.infos)
  in
  { t.program with Ast.statements = main }

let compute_certificate ?live_counts t =
  Analysis.analyze ~policy:(analysis_policy t) ?live_counts (analysis_program t)

let certificate t =
  if not t.use_analysis then None
  else
    match t.analysis_cache with
    | Some (c, _) -> Some c
    | None ->
        let c = compute_certificate t in
        t.analysis_cache <- Some (c, Analysis.finite c.Analysis.cert_total_answers);
        Some c

(* Runtime cross-check: accepted answers must never exceed the certified
   bound. The static certificate cannot see rows the host inserts through
   the API, so an apparent breach first recomputes with the live database
   sizes joined into the seeds ([live_counts]) and only counts a
   violation if the refreshed bound is still exceeded — amortised, since
   the refreshed bound is cached and the recompute (which rebuilds the
   O(n^3) precedence closure) runs only when the cached bound is passed,
   not per answer. [analysis.*] counters are engine-local, deliberately
   outside [journal_derived_prefixes]: a recount over events does not
   re-run the cross-check. *)
let analysis_check t =
  if t.use_analysis then
    match (certificate t, t.analysis_cache) with
    | Some _, Some (c, Some bound) ->
        let m = Telemetry.metrics t.tel in
        let accepted = Telemetry.Metrics.counter m "answers.accepted" in
        if accepted > bound then begin
          Telemetry.Metrics.incr m "analysis.bound.recomputes";
          let live_counts =
            List.map
              (fun rel ->
                (Reldb.Relation.name rel, List.length (Reldb.Relation.tuples rel)))
              (Reldb.Database.relations t.db)
          in
          let c' = compute_certificate ~live_counts t in
          let bound' = Analysis.finite c'.Analysis.cert_total_answers in
          t.analysis_cache <- Some (c, bound');
          match bound' with
          | Some b when accepted > b ->
              Telemetry.Metrics.incr m "analysis.bound.violations"
          | _ -> ()
        end
    | _ -> ()

(* --- Stepping ------------------------------------------------------------- *)

let record_event t event =
  t.events <- event :: t.events;
  let m = Telemetry.metrics t.tel in
  (* Guarded here (not only inside [incr]) so the disabled path never
     allocates the per-rule / per-worker key strings — the monitor's
     lifecycle recording shelters behind the same single boolean test.
     Toggling metrics mid-run therefore voids journal-derivability (for
     counters and monitor state alike); recount with [metrics_of_events]
     or [Monitor.of_events] instead. *)
  if Telemetry.Metrics.enabled m then begin
    count_event t.counting m event;
    (match t.monitor with Some mon -> Monitor.observe mon event | None -> ());
    if event.by_human <> None then analysis_check t
  end

let check_tail t env tail =
  let rec loop env = function
    | [] -> Some env
    | lit :: rest -> (
        match Eval.check_filter t.builtins t.db env lit with
        | `Pass env' -> loop env' rest
        | `Fail -> None)
  in
  loop env tail

let fire t idx (info : stmt_info) (m : Eval.matched) fp =
  Hashtbl.replace t.fired fp ();
  t.clock <- t.clock + 1;
  Log.debug (fun k ->
      k "clock %d: firing statement %s with %s" t.clock
        (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
        (Binding.to_string m.env));
  match check_tail t m.env info.tail with
  | None ->
      let event =
        {
          clock = t.clock;
          statement = idx;
          label = info.stmt.Ast.label;
          valuation = Binding.to_list m.env;
          fired = false;
          effects = [];
          by_human = None;
        }
      in
      record_event t event;
      event
  | Some env ->
      let effects = List.map (apply_head t idx info env) info.stmt.Ast.heads in
      let event =
        {
          clock = t.clock;
          statement = idx;
          label = info.stmt.Ast.label;
          valuation = Binding.to_list env;
          fired = true;
          effects;
          by_human = None;
        }
      in
      record_event t event;
      event

(* Fire under a "rule" span when tracing, with an "atom-match" child
   carrying the scan work spent finding the instance this step. *)
let fire_traced t idx (info : stmt_info) ~rows0 (m : Eval.matched) fp =
  if not (Telemetry.tracing t.tel) then fire t idx info m fp
  else begin
    let h =
      Telemetry.enter t.tel "rule"
        ~attrs:[ ("stmt", stmt_key info.stmt.Ast.label idx) ]
        ~clock:t.clock
    in
    Telemetry.emit t.tel "atom-match"
      ~attrs:
        [
          ("strategy", (if info.delta = None then "rescan" else "delta"));
          ("rows_scanned", string_of_int (Eval.rows_scanned () - rows0));
        ]
      ~clock:t.clock;
    let event = fire t idx info m fp in
    Telemetry.exit t.tel h
      ~attrs:[ ("fired", string_of_bool event.fired) ]
      ~clock:t.clock;
    event
  end

(* Current value of every watched change counter of [info]'s body. *)
let watch_values t info =
  Array.of_list
    (List.map
       (fun (rel, kind) ->
         match Reldb.Database.find t.db rel with
         | None -> 0
         | Some r -> (
             match kind with
             | Watch_destructions -> Reldb.Relation.destructions r
             | Watch_generation -> Reldb.Relation.generation r))
       info.watch_rels)

(* Advance one statement's delta state to the current database.

   If a watched counter moved — an in-place update or delete of a body
   relation, or any change to a relation negated in the prefix — the
   pending instances may be stale, so they are dropped and the statement
   re-derives from row zero. The re-derivation is scoped: only this
   statement resets; every other statement keeps its frontiers.

   Otherwise only the rows appended above each atom's frontier are
   consumed (seminaive discovery): every prefix valuation involving at
   least one row at or above an atom's frontier is found exactly once — a
   combination with new rows at positions S is discovered at position
   [min S], where earlier atoms are restricted below their frontiers and
   later atoms are unrestricted.

   Discoveries are merged into [pending] by support key, so the head of
   [pending] is always the instance naive left-to-right evaluation would
   fire next. A scan that consumed rows but discovered nothing still
   counts a round (and emits its span): empty deltas are observable, and
   the recount invariants of the registry hold over them. *)
let delta_scan t idx (info : stmt_info) (ds : delta_state) =
  let watch_now = watch_values t info in
  let reset = ds.watch <> [||] && ds.watch <> watch_now in
  if reset then begin
    Array.fill ds.frontiers 0 (Array.length ds.frontiers) 0;
    ds.pending <- []
  end;
  let n_atoms = Array.length ds.frontiers in
  let highs =
    Array.of_list
      (List.map
         (fun pred ->
           match Reldb.Database.find t.db pred with
           | Some rel -> Reldb.Relation.high_water rel
           | None -> 0)
         info.pos_preds)
  in
  let has_new = ref reset in
  for i = 0 to n_atoms - 1 do
    if highs.(i) > ds.frontiers.(i) then has_new := true
  done;
  if !has_new then begin
    let discovered = ref [] and n_discovered = ref 0 in
    let new_rows = Array.make n_atoms 0 in
    let plans = delta_plans t info ~n_atoms in
    (try
       for i = 0 to n_atoms - 1 do
         new_rows.(i) <- highs.(i) - ds.frontiers.(i);
         let reordered =
           match plans with
           | Some a when not a.(i).Planner.identity ->
               Some (a.(i).Planner.literals, a.(i).Planner.order)
           | Some _ | None -> None
         in
         for r = ds.frontiers.(i) to highs.(i) - 1 do
           let plan j =
             if j < i then Eval.Below ds.frontiers.(j)
             else if j = i then Eval.Exactly r
             else Eval.All
           in
           Eval.enumerate ~plan ?reordered t.builtins t.db info.prefix
             ~init:Binding.empty
             ~f:(fun m ->
               discovered := m :: !discovered;
               incr n_discovered;
               `Continue)
         done
       done
     with Eval.Error msg ->
       runtime_error "statement %s: %s"
         (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
         msg);
    ds.frontiers <- highs;
    ds.watch <- watch_now;
    let batch = List.sort Eval.compare_matched (List.rev !discovered) in
    ds.pending <- Eval.merge_matched ds.pending batch;
    let consumed = Array.fold_left ( + ) 0 new_rows in
    ds.last_new <- new_rows;
    ds.last_discovered <- !n_discovered;
    ds.last_mode <- (if reset then Delta_rederived else Delta_differential);
    let m = Telemetry.metrics t.tel in
    Telemetry.Metrics.incr m "eval.delta.rounds";
    Telemetry.Metrics.incr m ~by:consumed "eval.delta.new_rows";
    Telemetry.Metrics.incr m ~by:!n_discovered "eval.delta.discovered";
    if reset then Telemetry.Metrics.incr m "eval.delta.resets";
    if Telemetry.tracing t.tel then
      Telemetry.emit t.tel "delta-scan"
        ~attrs:
          [
            ("stmt", stmt_key info.stmt.Ast.label idx);
            ("mode", (if reset then "rederive" else "differential"));
            ("new_rows", string_of_int consumed);
            ("discovered", string_of_int !n_discovered);
          ]
        ~clock:t.clock
  end
  else
    (* Quiet scan: nothing new. [last_*] keeps describing the most recent
       round that did work (Delta_idle only until the first one). *)
    ds.watch <- watch_now

(* Pop the first pending instance that has not fired yet. *)
let rec pop_unfired t idx info (ds : delta_state) =
  match ds.pending with
  | [] -> None
  | m :: rest ->
      let fp = fingerprint idx info m.Eval.support in
      ds.pending <- rest;
      if Hashtbl.mem t.fired fp then pop_unfired t idx info ds else Some (m, fp)

let step_core t ~rows0 =
  let n = Array.length t.infos in
  let rec try_stmt i =
    if i >= n then None
    else
      let info = t.infos.(i) in
      match info.delta with
      | Some ds -> (
          (* Scan every step (cheap when nothing changed): a row appended
             by the previous fire may complete an instance whose support
             key precedes everything already pending, and the naive order
             must fire it first. *)
          delta_scan t i info ds;
          match pop_unfired t i info ds with
          | None -> try_stmt (i + 1)
          | Some (m, fp) -> (
              try Some (fire_traced t i info ~rows0 m fp)
              with Eval.Error msg ->
                runtime_error "statement %s: %s"
                  (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                  msg))
      | None ->
          let gen = body_generation t info in
          if info.exhausted_gen = gen then try_stmt (i + 1)
          else begin
            let found = ref None in
            (try
               match rescan_plan t info ~key:(plan_key t info) with
               | Some p ->
                   (* Planned enumeration produces valuations out of
                      conflict-resolution order, so scan them all and keep
                      the unfired instance valued by the earliest rows —
                      exactly the instance left-to-right evaluation stops
                      at first. *)
                   let best_key = ref None in
                   Eval.enumerate
                     ~reordered:(p.Planner.literals, p.Planner.order)
                     t.builtins t.db info.prefix ~init:Binding.empty
                     ~f:(fun m ->
                       let fp = fingerprint i info m.support in
                       if Hashtbl.mem t.fired fp then `Continue
                       else begin
                         let key =
                           List.map (fun (_, row, ver) -> (row, ver)) m.support
                         in
                         (match !best_key with
                         | Some k0 when compare k0 key <= 0 -> ()
                         | _ ->
                             best_key := Some key;
                             found := Some (m, fp));
                         `Continue
                       end)
               | None ->
                   Eval.enumerate t.builtins t.db info.prefix ~init:Binding.empty
                     ~f:(fun m ->
                       let fp = fingerprint i info m.support in
                       if Hashtbl.mem t.fired fp then `Continue
                       else begin
                         found := Some (m, fp);
                         `Stop
                       end)
             with Eval.Error msg ->
               runtime_error "statement %s: %s"
                 (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                 msg);
            match !found with
            | None ->
                info.exhausted_gen <- gen;
                try_stmt (i + 1)
            | Some (m, fp) -> (
                try Some (fire_traced t i info ~rows0 m fp)
                with Eval.Error msg ->
                  runtime_error "statement %s: %s"
                    (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                    msg)
          end
  in
  try_stmt 0

(* One machine step, metered: step count and the step's share of the
   process-wide row-scan counter (sampled as a before/after delta, so
   external resets between steps — e.g. the bench harness — don't skew
   it). *)
let step_internal t =
  let m = Telemetry.metrics t.tel in
  let rows0 = Eval.rows_scanned () in
  let result = step_core t ~rows0 in
  Telemetry.Metrics.incr m "engine.steps";
  Telemetry.Metrics.incr m ~by:(Eval.rows_scanned () - rows0) "eval.rows_scanned";
  (match result with
  | None -> Telemetry.Metrics.incr m "engine.steps.empty"
  | Some _ -> ());
  result

let step t =
  journal t J_step;
  step_internal t

let run ?(max_steps = 1_000_000) t =
  journal t (J_run max_steps);
  let rec loop steps =
    if steps >= max_steps then (steps, `Capped)
    else
      match step_internal t with
      | Some _ -> loop (steps + 1)
      | None -> (steps, `Quiescent)
  in
  let ((steps, outcome) as result) = loop 0 in
  (* Emitted even when the fixpoint held immediately (zero steps): an
     empty run is still an observation. Engine-local ("eval." namespace)
     like the delta counters — run boundaries are not journal events, so
     these must stay out of the journal-derived recount contract. *)
  let m = Telemetry.metrics t.tel in
  Telemetry.Metrics.incr m "eval.fixpoint.runs";
  Telemetry.Metrics.incr m ~by:steps "eval.fixpoint.steps";
  if Telemetry.tracing t.tel then
    Telemetry.emit t.tel "fixpoint"
      ~attrs:
        [
          ("steps", string_of_int steps);
          ("outcome", (match outcome with `Capped -> "capped" | `Quiescent -> "quiescent"));
        ]
      ~clock:t.clock;
  result

(* --- Open tuples ------------------------------------------------------------ *)

let pending t =
  List.rev_map (fun id -> Hashtbl.find_opt t.open_tbl id) t.open_order
  |> List.filter_map Fun.id

let pending_for t worker =
  List.filter
    (fun o -> match o.asked with None -> true | Some w -> Reldb.Value.equal w worker)
    (pending t)

let task_view t (o : open_tuple) =
  Views.render_open t.views ~relation:o.relation ~bound:o.bound ~open_attrs:o.open_attrs

let pending_since t ~after =
  (* open_order is in reverse creation order with strictly decreasing ids,
     so the new opens form a prefix. *)
  let rec take acc = function
    | id :: rest when id > after -> (
        match Hashtbl.find_opt t.open_tbl id with
        | Some o -> take (o :: acc) rest
        | None -> take acc rest)
    | _ -> acc
  in
  take [] t.open_order

let find_open t id = Hashtbl.find_opt t.open_tbl id

let resolve t id =
  Hashtbl.remove t.open_tbl id;
  Hashtbl.remove t.votes id;
  Hashtbl.remove t.task_spans id;
  Telemetry.Metrics.set_gauge (Telemetry.metrics t.tel) "open.pending"
    (Hashtbl.length t.open_tbl);
  match t.leases with Some l -> Lease.forget l ~open_id:id | None -> ()

(* Parent handle for spans about a pending task: its "task" span if one
   was recorded (tracing was on at creation), else the root. *)
let task_parent t id =
  match Hashtbl.find_opt t.task_spans id with
  | Some h -> h
  | None -> Telemetry.none

(* Emit a point span about a pending task, parented to its "task" span.
   [attrs] is a thunk so the untraced path allocates nothing. *)
let emit_task_span t open_id name attrs =
  if Telemetry.tracing t.tel then
    Telemetry.emit t.tel name ~parent:(task_parent t open_id) ~attrs:(attrs ())
      ~clock:t.clock

(* --- Leases, dead letters, quorum ------------------------------------------ *)

let lease_config t = Option.map Lease.config t.leases

let set_lease_config t cfg =
  journal t (J_set_lease cfg);
  t.leases <- Option.map Lease.create cfg

let install_quorum t entry ~aggregate =
  journal t (J_set_quorum entry);
  t.quorum <-
    Option.map
      (fun (policy, relations) ->
        { qs_policy = policy; qs_relations = relations; qs_aggregate = aggregate })
      entry;
  (* The certificate charges per-task answers from the quorum policy. *)
  t.analysis_cache <- None

let check_policy = function
  | Fixed _ -> ()
  | Adaptive { tau; min_votes; max_votes } ->
      if not (tau > 0.0 && tau <= 1.0) then
        runtime_error "adaptive quorum: tau must be in (0, 1], got %g" tau;
      if min_votes < 1 || max_votes < min_votes then
        runtime_error "adaptive quorum: need 1 <= min_votes <= max_votes, got %d..%d"
          min_votes max_votes

let set_quorum t q =
  install_quorum t
    (Option.map (fun q -> (Fixed q.k, q.relations)) q)
    ~aggregate:(match q with Some q -> q.aggregate | None -> default_aggregate)

let set_quorum_policy t ?relations ?(aggregate = default_aggregate) policy =
  check_policy policy;
  install_quorum t (Some (policy, relations)) ~aggregate

let quorum_of t =
  Option.map
    (fun qs ->
      { k = policy_cap qs.qs_policy; relations = qs.qs_relations;
        aggregate = qs.qs_aggregate })
    t.quorum

let quorum_policy_of t = Option.map (fun qs -> qs.qs_policy) t.quorum

(* --- Campaign monitor -------------------------------------------------------- *)

(* Default the monitor's spend ceiling from the budget certificate: the
   bound is answers × cost_per_answer, so it only translates to budget
   units when no payoff statement can add spend on top. Filled BEFORE
   journaling, so replay and recovery re-install the already-filled
   config (the fill is a no-op on a non-None field) and land on identical
   monitor state. *)
let certify_monitor_config t cfg =
  match cfg with
  | Some c
    when t.use_analysis && c.Monitor.certified_bound = None
         && c.Monitor.max_budget = None ->
      let has_payoff =
        Array.exists
          (fun i ->
            List.exists
              (fun (h : Ast.head) ->
                match h.Ast.head with
                | Ast.Head_payoff _ -> true
                | Ast.Head_atom _ -> false)
              i.stmt.Ast.heads)
          t.infos
      in
      if has_payoff then cfg
      else
        Option.bind (certificate t) (fun cert ->
            Analysis.finite cert.Analysis.cert_total_answers)
        |> Option.fold ~none:cfg ~some:(fun b ->
               Some
                 {
                   c with
                   Monitor.certified_bound = Some (b * c.Monitor.cost_per_answer);
                 })
  | _ -> cfg

(* Replay path: install the journaled config verbatim — the fill (if
   any) already happened before the entry was journaled, so re-running it
   here could diverge when the restoring engine's analysis flag differs
   from the original's. *)
let set_monitor_exact t cfg =
  journal t (J_set_monitor cfg);
  (* Backfill from the whole event log, so the live monitor always equals
     [Monitor.of_events cfg (events t)] no matter when it was installed —
     and so snapshot replay and crash recovery (which re-run or re-derive
     this entry) land on identical state. *)
  t.monitor <- Option.map (fun c -> Monitor.of_events c (events t)) cfg

let set_monitor t cfg = set_monitor_exact t (certify_monitor_config t cfg)

let monitor t = t.monitor

let monitor_json t =
  match t.monitor with Some mon -> Monitor.to_json mon | None -> "null"

(* A round-boundary sample: journal-first like every mutation, then run
   the watchdogs and record one event whose [Sampled]/[Alert_fired]
   effects carry the whole verdict — the event log, not the monitor's
   memory, is the source of truth (the recount fold reads the firings
   back). With the metrics kill switch off the sample is journaled but no
   event is recorded — the same "toggling voids derivability" caveat the
   counter recount carries. *)
let monitor_sample t ~round =
  journal t (J_sample round);
  match t.monitor with
  | None -> []
  | Some mon ->
      if not (Telemetry.Metrics.enabled (Telemetry.metrics t.tel)) then []
      else begin
        let alerts = Monitor.check mon in
        t.clock <- t.clock + 1;
        let effects =
          Sampled { round }
          :: List.map (fun alert -> Alert_fired { round; alert }) alerts
        in
        record_event t
          {
            clock = t.clock;
            statement = -1;
            label = Some "monitor";
            valuation = [];
            fired = false;
            effects;
            by_human = None;
          };
        if Telemetry.tracing t.tel then
          Telemetry.emit t.tel "monitor-sample"
            ~attrs:
              [ ("round", string_of_int round);
                ("alerts", string_of_int (List.length alerts)) ]
            ~clock:t.clock;
        List.map
          (fun alert -> { Monitor.at_round = round; at_clock = t.clock; alert })
          alerts
      end

(* Quorum applies to undesignated, non-repeatable tasks: several workers
   answer the same open tuple and an aggregation policy picks the value.
   Designated tasks have exactly one eligible worker and standing tasks
   insert one tuple per answer, so neither can collect k votes. *)
let quorum_for t (o : open_tuple) =
  match t.quorum with
  | None -> None
  | Some qs ->
      if
        policy_cap qs.qs_policy > 1 && o.asked = None && not o.repeatable
        && (match qs.qs_relations with
           | None -> true
           | Some rs -> List.mem o.relation rs)
      then Some qs
      else None

let capacity t o =
  match quorum_for t o with Some qs -> policy_cap qs.qs_policy | None -> 1

let dead_letters t = List.rev t.dead

(* Remove a task from the pending pool into the dead-letter pool, leaving
   an auditable event in the log. *)
let dead_letter t (o : open_tuple) reason =
  let parent = task_parent t o.id in
  Hashtbl.remove t.open_tbl o.id;
  Hashtbl.remove t.votes o.id;
  Hashtbl.remove t.task_spans o.id;
  Telemetry.Metrics.set_gauge (Telemetry.metrics t.tel) "open.pending"
    (Hashtbl.length t.open_tbl);
  (match t.leases with Some l -> Lease.mark_dead l ~open_id:o.id reason | None -> ());
  t.dead <- (o, reason) :: t.dead;
  t.clock <- t.clock + 1;
  record_event t
    {
      clock = t.clock;
      statement = o.statement;
      label = o.label;
      valuation = [];
      fired = false;
      effects = [ Dead_lettered (o.id, reason) ];
      by_human = None;
    };
  if Telemetry.tracing t.tel then
    Telemetry.emit t.tel "dead-letter" ~parent
      ~attrs:[ ("open", string_of_int o.id); ("reason", reason_key reason) ]
      ~clock:t.clock

let decline t id =
  journal t (J_decline id);
  match find_open t id with
  | None -> ()
  | Some o -> dead_letter t o Lease.Declined

type assign_error =
  [ `Stale | `Dead of Lease.reason | `Backoff of int | `Held of Reldb.Value.t ]

let assign t id ~worker ~now =
  journal t (J_assign (id, worker, now));
  let result =
    match t.leases with
    | None ->
        runtime_error
          "assign: the lease runtime is not configured (call set_lease_config first)"
    | Some l -> (
        match Lease.is_dead l ~open_id:id with
        | Some r -> Error (`Dead r)
        | None -> (
            match find_open t id with
            | None -> Error `Stale
            | Some o ->
                (Lease.assign l ~open_id:id ~worker ~now ~capacity:(capacity t o)
                  :> (Lease.lease, assign_error) result)))
  in
  let m = Telemetry.metrics t.tel in
  (match result with
  | Ok _ ->
      Telemetry.Metrics.incr m "lease.granted";
      emit_task_span t id "lease" (fun () ->
          [ ("open", string_of_int id); ("worker", Reldb.Value.to_display worker) ])
  | Error `Stale -> Telemetry.Metrics.incr m "lease.refused.stale"
  | Error (`Dead _) -> Telemetry.Metrics.incr m "lease.refused.dead"
  | Error (`Backoff _) -> Telemetry.Metrics.incr m "lease.refused.backoff"
  | Error (`Held _) -> Telemetry.Metrics.incr m "lease.refused.held");
  result

let reclaim t ~now =
  journal t (J_reclaim now);
  match t.leases with
  | None -> []
  | Some l ->
      let verdicts = Lease.reclaim l ~now in
      let m = Telemetry.metrics t.tel in
      List.iter
        (fun (id, verdict) ->
          match verdict with
          | `Retry _ -> Telemetry.Metrics.incr m "lease.reclaimed.retry"
          | `Dead reason -> (
              Telemetry.Metrics.incr m "lease.reclaimed.dead";
              match find_open t id with
              | Some o -> dead_letter t o reason
              | None -> ()))
        verdicts;
      verdicts

(* A garbage answer (wrong attributes or types) counts against the task's
   rejection budget; over budget the task is dead-lettered — a task that
   only ever attracts garbage must not pend forever. *)
let note_rejected_answer t (o : open_tuple) =
  match t.leases with
  | None -> ()
  | Some l -> (
      match Lease.note_rejection l ~open_id:o.id with
      | `Counted _ -> ()
      | `Exhausted n -> dead_letter t o (Lease.Rejected_answers n))

let release_lease t (o : open_tuple) worker =
  match t.leases with
  | None -> ()
  | Some l -> Lease.release l ~open_id:o.id ~worker

let human_event t (o : open_tuple) worker effects valuation =
  Log.debug (fun k ->
      k "human %s answers open tuple %d on %s" (Reldb.Value.to_display worker) o.id
        o.relation);
  t.clock <- t.clock + 1;
  let event =
    {
      clock = t.clock;
      statement = o.statement;
      label = o.label;
      valuation;
      fired = true;
      effects;
      by_human = Some worker;
    }
  in
  record_event t event;
  event

(* A worker may answer when they are the designated worker (if any) and no
   other workers hold every lease slot of the task. Without the lease
   runtime only the designation check applies — the seed behaviour. *)
let worker_may_answer t (o : open_tuple) worker =
  match o.asked with
  | Some w when not (Reldb.Value.equal w worker) -> false
  | Some _ | None -> (
      match t.leases with
      | None -> true
      | Some l ->
          Lease.holds l ~open_id:o.id ~worker
          || Lease.blocked_for l ~open_id:o.id ~worker ~capacity:(capacity t o) = None)

let already_voted t (o : open_tuple) worker =
  match Hashtbl.find_opt t.votes o.id with
  | None -> false
  | Some votes -> List.exists (fun (w, _) -> Reldb.Value.equal w worker) votes

let ctor_name = Reldb.Value.type_name

(* Schemas declare no types, so the expected type of an open attribute is
   inferred from the evidence at hand: the first non-null value already
   stored in that column. An empty column validates anything — without
   evidence there is nothing to check against. *)
let column_ctor t relation attr =
  match Reldb.Database.find t.db relation with
  | None -> None
  | Some rel ->
      let found = ref None in
      (try
         Reldb.Relation.iter
           (fun _ tuple ->
             match Reldb.Tuple.get_or_null tuple attr with
             | Reldb.Value.Null -> ()
             | v ->
                 found := Some (ctor_name v);
                 raise Exit)
           rel
       with Exit -> ());
      !found

let type_mismatch t (o : open_tuple) values =
  List.find_map
    (fun (attr, v) ->
      if Reldb.Value.is_null v then None
      else
        match column_ctor t o.relation attr with
        | Some expected when expected <> ctor_name v ->
            Some (Type_mismatch { attr; value = v })
        | Some _ | None -> None)
    values

let record_vote t (o : open_tuple) worker vote =
  let prev = Option.value (Hashtbl.find_opt t.votes o.id) ~default:[] in
  Hashtbl.replace t.votes o.id ((worker, vote) :: prev);
  List.length prev + 1

(* Chronological votes per open attribute, ready for the aggregation hook. *)
let votes_by_attr t (o : open_tuple) =
  let chronological =
    List.rev_map
      (function
        | _, Vote_values vs -> vs
        | _, Vote_exists _ -> [])
      (Option.value (Hashtbl.find_opt t.votes o.id) ~default:[])
  in
  List.map
    (fun attr ->
      (attr, List.filter_map (fun vs -> List.assoc_opt attr vs) chronological))
    o.open_attrs

let aggregate_votes (aggregate : aggregate) ballots =
  let chosen = aggregate ballots in
  List.map
    (fun (attr, vs) ->
      match List.assoc_opt attr chosen with
      | Some v -> (attr, v)
      | None -> (
          (* A hook that drops an attribute falls back to the first vote. *)
          match vs with
          | v :: _ -> (attr, v)
          | [] -> (attr, Reldb.Value.Null)))
    ballots

(* --- Worker reputation and the adaptive stopping rule ----------------------- *)

let worker_key = Reldb.Value.to_display

let worker_reliability t w = Quality.Model.reliability t.reputation (worker_key w)

let reliability_table t =
  List.map
    (fun w ->
      ( w,
        Quality.Model.reliability t.reputation w,
        Quality.Model.observations t.reputation w ))
    (Quality.Model.workers t.reputation)

(* Score one worker's agreement with the resolution and refresh their
   reliability gauge. Gauges are operational state, not journal-derived
   (the model itself is rebuilt by replay), so the disabled path skips the
   key allocation like the other engine-local metrics. *)
let observe_reputation t w ~agreed =
  let key = worker_key w in
  Quality.Model.observe t.reputation key ~agreed;
  let m = Telemetry.metrics t.tel in
  if Telemetry.Metrics.enabled m then
    Telemetry.Metrics.set_gauge m
      ("quality.reliability.worker." ^ key)
      (int_of_float
         ((Quality.Model.reliability t.reputation key *. 1000.) +. 0.5))

(* On resolution, every banked ballot is scored against the chosen tuple:
   one agreement event per open attribute the voter matched (or missed). *)
let note_value_agreements t (o : open_tuple) chosen =
  List.iter
    (fun (w, v) ->
      match v with
      | Vote_values vs ->
          List.iter
            (fun (attr, c) ->
              match List.assoc_opt attr vs with
              | Some b -> observe_reputation t w ~agreed:(Reldb.Value.equal b c)
              | None -> ())
            chosen
      | Vote_exists _ -> ())
    (List.rev (Option.value (Hashtbl.find_opt t.votes o.id) ~default:[]))

let note_exists_agreements t (o : open_tuple) ~verdict =
  List.iter
    (fun (w, v) ->
      match v with
      | Vote_exists yes -> observe_reputation t w ~agreed:(yes = verdict)
      | Vote_values _ -> ())
    (List.rev (Option.value (Hashtbl.find_opt t.votes o.id) ~default:[]))

(* Chronological votes on one open attribute, weighted by each voter's
   current reliability — the input shape of {!Quality.Decide}. *)
let weighted_value_slots t (o : open_tuple) =
  let chronological =
    List.rev (Option.value (Hashtbl.find_opt t.votes o.id) ~default:[])
  in
  List.map
    (fun attr ->
      ( attr,
        List.filter_map
          (fun (w, v) ->
            match v with
            | Vote_values vs ->
                Option.map
                  (fun x -> (x, worker_reliability t w))
                  (List.assoc_opt attr vs)
            | Vote_exists _ -> None)
          chronological ))
    o.open_attrs

let weighted_exists_votes t (o : open_tuple) =
  List.filter_map
    (fun (w, v) ->
      match v with
      | Vote_exists yes -> Some (Reldb.Value.Bool yes, worker_reliability t w)
      | Vote_values _ -> None)
    (List.rev (Option.value (Hashtbl.find_opt t.votes o.id) ~default:[]))

let pct p = int_of_float ((p *. 100.) +. 0.5)

(* The per-task stopping rule of an [Adaptive] policy, combining the
   per-attribute verdicts of {!Quality.Decide.decide} (every ballot binds
   every open attribute, so all slots hold the same number of votes):
   resolve only when every slot is confident, escalate to the fallback
   aggregate once any slot hits the cap unconvinced, keep asking
   otherwise. The reported posterior is the weakest slot's. *)
let adaptive_verdict t cfg (o : open_tuple) =
  let verdicts =
    List.map
      (fun (attr, votes) -> (attr, Quality.Decide.decide cfg votes))
      (weighted_value_slots t o)
  in
  let slot_posterior = function
    | Quality.Decide.Resolve (_, p) | Quality.Decide.Escalate p -> p
    | Quality.Decide.Ask_more -> 0.0
  in
  let min_posterior =
    List.fold_left (fun acc (_, v) -> Float.min acc (slot_posterior v)) 1.0 verdicts
  in
  if
    verdicts <> []
    && List.for_all
         (fun (_, v) ->
           match v with Quality.Decide.Resolve _ -> true | _ -> false)
         verdicts
  then
    `Resolve
      ( List.map
          (fun (attr, v) ->
            match v with
            | Quality.Decide.Resolve (c, _) -> (attr, c)
            | _ -> assert false)
          verdicts,
        pct min_posterior,
        false )
  else if
    List.exists
      (fun (_, v) -> match v with Quality.Decide.Escalate _ -> true | _ -> false)
      verdicts
  then `Escalate (pct min_posterior)
  else `Pending

let task_uncertainty t id =
  match find_open t id with
  | None -> 0.0
  | Some o ->
      if o.existence then Quality.Decide.uncertainty (weighted_exists_votes t o)
      else
        List.fold_left
          (fun acc (_, votes) -> Float.max acc (Quality.Decide.uncertainty votes))
          0.0
          (weighted_value_slots t o)

let task_posteriors t id =
  match find_open t id with
  | None -> []
  | Some o ->
      if o.existence then
        [ ("(exists)", Quality.Decide.posteriors (weighted_exists_votes t o)) ]
      else
        List.map
          (fun (attr, votes) -> (attr, Quality.Decide.posteriors votes))
          (weighted_value_slots t o)

let votes_banked t id =
  match Hashtbl.find_opt t.votes id with Some vs -> List.length vs | None -> 0

let has_voted t id ~worker =
  match find_open t id with
  | None -> false
  | Some o -> already_voted t o worker

let supply_checked t id ~worker values =
  match find_open t id with
  | None -> Error (Stale id)
  | Some o ->
      if o.existence then Error Wrong_question
      else if not (worker_may_answer t o worker) then Error Not_lease_holder
      else if already_voted t o worker then Error Already_voted
      else begin
        let expected = List.sort String.compare o.open_attrs in
        let given = List.sort String.compare (List.map fst values) in
        if expected <> given then begin
          note_rejected_answer t o;
          Error (Wrong_attrs { expected; given })
        end
        else
          match type_mismatch t o values with
          | Some r ->
              note_rejected_answer t o;
              Error r
          | None -> (
              match quorum_for t o with
              | Some qs -> (
                  let n = record_vote t o worker (Vote_values values) in
                  let resolve_with ?adaptive chosen =
                    note_value_agreements t o chosen;
                    let bound = Reldb.Tuple.to_list o.bound @ chosen in
                    let effect = insert_tuple t o.relation bound in
                    resolve t id;
                    let effects =
                      Vote_recorded (o.id, n)
                      ::
                      (match adaptive with
                      | Some (posterior_pct, escalated) ->
                          [ Adaptive_resolved
                              { open_id = o.id; posterior_pct; escalated };
                            effect ]
                      | None -> [ effect ])
                    in
                    Ok (human_event t o worker effects chosen)
                  in
                  let pending () =
                    (* The vote is banked; the task stays pending until the
                       quorum (or the confidence threshold) is reached. *)
                    release_lease t o worker;
                    Ok (human_event t o worker [ Vote_recorded (o.id, n) ] values)
                  in
                  match qs.qs_policy with
                  | Fixed k ->
                      if n < k then pending ()
                      else
                        resolve_with
                          (aggregate_votes qs.qs_aggregate (votes_by_attr t o))
                  | Adaptive { tau; min_votes; max_votes } -> (
                      match
                        adaptive_verdict t { Quality.Decide.tau; min_votes; max_votes } o
                      with
                      | `Pending -> pending ()
                      | `Resolve (chosen, posterior_pct, escalated) ->
                          resolve_with ~adaptive:(posterior_pct, escalated) chosen
                      | `Escalate posterior_pct ->
                          resolve_with ~adaptive:(posterior_pct, true)
                            (aggregate_votes qs.qs_aggregate (votes_by_attr t o))))
              | None ->
                  let bound = Reldb.Tuple.to_list o.bound @ values in
                  let effect = insert_tuple t o.relation bound in
                  (* The [Resolved] marker makes non-quorum retirement
                     visible to event folds (the campaign monitor's
                     lifecycle tracing); quorum resolutions keep their
                     historical shape and are recognised by the final
                     [Vote_recorded] riding with other effects. Standing
                     (repeatable) tasks never retire. *)
                  if o.repeatable then begin
                    release_lease t o worker;
                    Ok (human_event t o worker [ effect ] values)
                  end
                  else begin
                    resolve t id;
                    Ok (human_event t o worker [ effect; Resolved o.id ] values)
                  end)
      end

(* Engine-local outcome counters for human answers. Accepted answers are
   counted by the event fold; rejections leave no event, so they are
   counted here (and are deliberately NOT journal-derived). Guarded so the
   disabled path never allocates the key strings. *)
let note_answer_metrics t ~worker result =
  let m = Telemetry.metrics t.tel in
  if Telemetry.Metrics.enabled m then
    match result with
    | Ok _ -> ()
    | Error r ->
        Telemetry.Metrics.incr m "answers.rejected";
        Telemetry.Metrics.incr m ("answers.rejected.reason." ^ reject_key r);
        Telemetry.Metrics.incr m
          ("answers.rejected.worker." ^ Reldb.Value.to_display worker)

(* The task-lifecycle spans of an answer, parented to the task's "task"
   span: "vote" while a quorum task stays pending, "resolve" when the task
   left the pool, "answer" for accepted answers to standing tasks, and
   "answer-rejected" with the typed reason otherwise. [parent] is sampled
   before the answer runs — resolution drops the task's span record. *)
let trace_answer t id ~worker ~parent result =
  if Telemetry.tracing t.tel then
    match result with
    | Error r ->
        Telemetry.emit t.tel "answer-rejected" ~parent
          ~attrs:
            [
              ("open", string_of_int id);
              ("worker", Reldb.Value.to_display worker);
              ("reason", reject_key r);
            ]
          ~clock:t.clock
    | Ok (ev : event) ->
        let vote =
          List.find_map
            (function Vote_recorded (_, n) -> Some n | _ -> None)
            ev.effects
        in
        let resolved = not (Hashtbl.mem t.open_tbl id) in
        let name =
          if resolved then "resolve" else if vote <> None then "vote" else "answer"
        in
        Telemetry.emit t.tel name ~parent
          ~attrs:
            ([
               ("open", string_of_int id);
               ("worker", Reldb.Value.to_display worker);
             ]
            @ match vote with Some n -> [ ("votes", string_of_int n) ] | None -> [])
          ~clock:t.clock

let supply t id ~worker values =
  journal t (J_supply (id, worker, values));
  let parent = if Telemetry.tracing t.tel then task_parent t id else Telemetry.none in
  let result = supply_checked t id ~worker values in
  note_answer_metrics t ~worker result;
  trace_answer t id ~worker ~parent result;
  result

let answer_existence_checked t id ~worker yes =
  match find_open t id with
  | None -> Error (Stale id)
  | Some o ->
      if not o.existence then Error Wrong_question
      else if not (worker_may_answer t o worker) then Error Not_lease_holder
      else if already_voted t o worker then Error Already_voted
      else (
        match quorum_for t o with
        | Some qs -> (
            let n = record_vote t o worker (Vote_exists yes) in
            let pending () =
              release_lease t o worker;
              Ok (human_event t o worker [ Vote_recorded (o.id, n) ] [])
            in
            let strict_majority () =
              let ayes =
                List.fold_left
                  (fun acc (_, v) ->
                    match v with Vote_exists true -> acc + 1 | _ -> acc)
                  0
                  (Hashtbl.find t.votes o.id)
              in
              2 * ayes > n
            in
            let resolve_with ?adaptive verdict =
              note_exists_agreements t o ~verdict;
              let effects =
                if verdict then
                  [ insert_tuple t o.relation (Reldb.Tuple.to_list o.bound) ]
                else [ No_effect ]
              in
              let effects =
                match adaptive with
                | Some (posterior_pct, escalated) ->
                    Adaptive_resolved { open_id = o.id; posterior_pct; escalated }
                    :: effects
                | None -> effects
              in
              resolve t id;
              Ok (human_event t o worker (Vote_recorded (o.id, n) :: effects) [])
            in
            match qs.qs_policy with
            | Fixed k -> if n < k then pending () else resolve_with (strict_majority ())
            | Adaptive { tau; min_votes; max_votes } -> (
                match
                  Quality.Decide.decide
                    { Quality.Decide.tau; min_votes; max_votes }
                    (weighted_exists_votes t o)
                with
                | Quality.Decide.Ask_more -> pending ()
                | Quality.Decide.Resolve (v, p) ->
                    resolve_with ~adaptive:(pct p, false)
                      (Reldb.Value.equal v (Reldb.Value.Bool true))
                | Quality.Decide.Escalate p ->
                    resolve_with ~adaptive:(pct p, true) (strict_majority ())))
        | None ->
            let effects =
              if yes then [ insert_tuple t o.relation (Reldb.Tuple.to_list o.bound) ]
              else [ No_effect ]
            in
            resolve t id;
            Ok (human_event t o worker (effects @ [ Resolved o.id ]) []))

let answer_existence t id ~worker yes =
  journal t (J_answer (id, worker, yes));
  let parent = if Telemetry.tracing t.tel then task_parent t id else Telemetry.none in
  let result = answer_existence_checked t id ~worker yes in
  note_answer_metrics t ~worker result;
  trace_answer t id ~worker ~parent result;
  result

(* --- EXPLAIN -------------------------------------------------------------------- *)

(* Render the evidence behind the engine's current evaluation choices:
   per rule the strategy, the join order the planner would pick against
   today's statistics (with the estimated rows that justified each pick),
   and whether the cached compiled plan is still valid; then the lease and
   quorum runtime state the pending tasks live under. Planning here calls
   [Planner.plan] directly — it never touches the plan caches or their
   hit/miss counters, so EXPLAIN is observation-only. *)
let pp_explain fmt t =
  Format.fprintf fmt "EXPLAIN  (clock %d, %d statements, planner %s)@." t.clock
    (Array.length t.infos)
    (if t.use_planner then "on" else "off");
  (* Static task bounds, paired with each rule's open heads in order per
     relation (the certificate lists bounds in statement order, so the
     queues line up with the traversal below). *)
  let cert = certificate t in
  let bounds_by_rel : (string, Analysis.task_bound Queue.t) Hashtbl.t =
    Hashtbl.create 8
  in
  (match cert with
  | Some c ->
      List.iter
        (fun (tb : Analysis.task_bound) ->
          let q =
            match Hashtbl.find_opt bounds_by_rel tb.Analysis.tb_relation with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.add bounds_by_rel tb.Analysis.tb_relation q;
                q
          in
          Queue.push tb q)
        c.Analysis.cert_tasks
  | None -> ());
  let next_bound rel =
    match Hashtbl.find_opt bounds_by_rel rel with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | _ -> None
  in
  Array.iteri
    (fun i info ->
      let key = plan_key t info in
      Format.fprintf fmt "@.rule %s  [%s]@."
        (stmt_key info.stmt.Ast.label i)
        (if info.delta = None then "rescan" else "delta");
      (match info.pos_preds with
      | [] -> Format.fprintf fmt "  join: none (fact or filter-only body)@."
      | _ when not t.use_planner ->
          Format.fprintf fmt "  join: %s  (left-to-right, planner off)@."
            (String.concat " -> " info.pos_preds)
      | _ ->
          let plan = Planner.plan t.db info.prefix in
          Format.fprintf fmt "  join: %s%s@."
            (String.concat " -> "
               (List.map
                  (fun (pred, est, card) ->
                    Printf.sprintf "%s(est %d of %d)" pred est card)
                  plan.Planner.steps))
            (if plan.Planner.identity then "  (identity order)" else "");
          let cache =
            if info.delta <> None then
              if Array.length info.delta_plans = 0 then "not yet compiled"
              else if info.delta_plans_key = key then "fresh"
              else "stale (statistics epoch moved)"
            else
              match info.rescan_plan with
              | None -> "not yet compiled"
              | Some _ when info.rescan_plan_key = key -> "fresh"
              | Some _ -> "stale (statistics epoch moved)"
          in
          Format.fprintf fmt "  plan cache: %s  (stats key %s)@." cache
            (String.concat "."
               (List.map string_of_int (Array.to_list key))));
      (* The delta view: per atom its frontier (and the rows it consumed
         as the delta atom last round), what the last productive round
         did, and how many discovered instances are still waiting. *)
      (match info.delta with
      | None -> ()
      | Some ds ->
          let atoms =
            List.mapi
              (fun j pred ->
                let d = if j < Array.length ds.last_new then ds.last_new.(j) else 0 in
                Printf.sprintf "%s@%d%s" pred
                  (if j < Array.length ds.frontiers then ds.frontiers.(j) else 0)
                  (if d > 0 then Printf.sprintf "(+%d)" d else ""))
              info.pos_preds
          in
          let mode =
            match ds.last_mode with
            | Delta_idle -> "idle (no round yet)"
            | Delta_differential -> "differential (new-facts join)"
            | Delta_rederived -> "re-derivation (watched relation changed)"
          in
          let delta_atoms =
            List.filteri
              (fun j _ -> j < Array.length ds.last_new && ds.last_new.(j) > 0)
              info.pos_preds
          in
          Format.fprintf fmt "  delta: frontiers %s@." (String.concat " " atoms);
          Format.fprintf fmt
            "  delta: last round %s — delta atom(s): %s, %d discovered; %d pending@."
            mode
            (match delta_atoms with [] -> "none" | l -> String.concat ", " l)
            ds.last_discovered
            (List.length ds.pending));
      if info.tail <> [] then
        Format.fprintf fmt "  tail: %d filter(s) checked after the join@."
          (List.length info.tail);
      (* Static bound next to the planner's dynamic [est N of M]. *)
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_atom { atom; kind = Ast.Open _ } -> (
              match next_bound atom.Ast.pred with
              | Some tb ->
                  Format.fprintf fmt
                    "  static: %s instances %s, per-instance %s, answers %s@."
                    tb.Analysis.tb_relation
                    (Analysis.card_to_string tb.Analysis.tb_instances)
                    (Analysis.card_to_string tb.Analysis.tb_multiplier)
                    (Analysis.card_to_string tb.Analysis.tb_answers)
              | None -> ())
          | Ast.Head_atom _ | Ast.Head_payoff _ -> ())
        info.stmt.Ast.heads)
    t.infos;
  (match t.leases with
  | None -> Format.fprintf fmt "@.leases: off@."
  | Some l ->
      let c = Lease.config l in
      Format.fprintf fmt
        "@.leases: ttl %d, max timeouts %d, backoff base %d, max rejections %d  \
         (logical time %d, %d dead-lettered)@."
        c.Lease.ttl c.Lease.max_timeouts c.Lease.backoff_base c.Lease.max_rejections
        (Lease.now l)
        (List.length (Lease.dead_letters l)));
  (match t.quorum with
  | None -> Format.fprintf fmt "quorum: off@."
  | Some qs ->
      let scope =
        match qs.qs_relations with
        | None -> "  (all eligible relations)"
        | Some rs -> "  on " ^ String.concat ", " rs
      in
      (match qs.qs_policy with
      | Fixed k -> Format.fprintf fmt "quorum: k = %d%s@." k scope
      | Adaptive a ->
          Format.fprintf fmt "quorum: adaptive (tau %.2f, votes %d..%d)%s@." a.tau
            a.min_votes a.max_votes scope);
      match qs.qs_policy with
      | Adaptive _ when reliability_table t <> [] ->
          Format.fprintf fmt "worker reliability:@.";
          List.iter
            (fun (w, r, n) ->
              Format.fprintf fmt "  %-10s %.3f  (%d observations)@." w r n)
            (reliability_table t)
      | _ -> ());
  (match cert with
  | None -> Format.fprintf fmt "budget certificate: off@."
  | Some c ->
      Format.fprintf fmt "budget certificate: total tasks %s, answers %s  (%s)@."
        (Analysis.card_to_string c.Analysis.cert_total_tasks)
        (Analysis.card_to_string c.Analysis.cert_total_answers)
        c.Analysis.cert_policy);
  let pend = pending t in
  Format.fprintf fmt "pending tasks: %d  (dead letters: %d)@." (List.length pend)
    (List.length t.dead);
  List.iter
    (fun (o : open_tuple) ->
      match Hashtbl.find_opt t.votes o.id with
      | Some votes when votes <> [] ->
          Format.fprintf fmt "  #%d %s: %d/%d votes banked@." o.id o.relation
            (List.length votes) (capacity t o)
      | _ -> ())
    pend

let explain t = Format.asprintf "%a" pp_explain t

(* --- Payoffs ------------------------------------------------------------------ *)

let payoffs t =
  match Reldb.Database.find t.db "Payoff" with
  | None -> []
  | Some rel ->
      List.map
        (fun tuple ->
          (Reldb.Tuple.get_or_null tuple "player", Reldb.Tuple.get_or_null tuple "score"))
        (Reldb.Relation.tuples rel)

let payoff_of t player =
  match List.find_opt (fun (p, _) -> Reldb.Value.equal p player) (payoffs t) with
  | Some (_, score) -> score
  | None -> Reldb.Value.Int 0

(* --- Path tables --------------------------------------------------------------- *)

let game_instances t game =
  let rel_name = path_relation_name game in
  match (Reldb.Database.find t.db rel_name, Hashtbl.find_opt t.path_rels rel_name) with
  | Some rel, Some params ->
      let seen = Hashtbl.create 16 in
      Reldb.Relation.fold
        (fun acc _ tuple ->
          let key = Reldb.Tuple.project tuple params in
          if Hashtbl.mem seen key then acc
          else begin
            Hashtbl.replace seen key ();
            key :: acc
          end)
        [] rel
      |> List.rev
  | _ -> []

let path_table t game ~params =
  let rel_name = path_relation_name game in
  match Reldb.Database.find t.db rel_name with
  | None -> []
  | Some rel ->
      let rows = Reldb.Relation.filter (fun tuple -> Reldb.Tuple.matches tuple params) rel in
      List.mapi
        (fun i tuple -> Reldb.Tuple.set tuple "order" (Reldb.Value.Int (i + 1)))
        rows

(* --- Checkpoint / replay ------------------------------------------------------- *)

type snapshot_reason =
  | Not_a_snapshot
  | Unsupported_version of int
  | Truncated
  | Checksum_mismatch
  | Corrupt_payload

exception Snapshot_error of snapshot_reason

let snapshot_reason_to_string = function
  | Not_a_snapshot -> "not a CyLog snapshot (bad magic)"
  | Unsupported_version v -> Printf.sprintf "unsupported snapshot format version %d" v
  | Truncated -> "truncated snapshot"
  | Checksum_mismatch -> "snapshot payload fails its checksum"
  | Corrupt_payload -> "corrupt snapshot payload"

let snapshot_error r = raise (Snapshot_error r)

(* Format: 17-byte magic, u32le payload length, u32le CRC-32 of the
   payload, then the marshalled payload. The v1 format (magic only, no
   length or checksum) is recognised and refused as [Unsupported_version]
   rather than misread as garbage. *)
let snapshot_magic = "CYLOG-SNAPSHOT/2\n"
let snapshot_magic_v1 = "CYLOG-SNAPSHOT/1\n"

let put_u32le b n =
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff))

let get_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

type snapshot_payload = {
  snap_use_delta : bool;
  snap_use_planner : bool;
  snap_program : Ast.program;
  snap_journal : jentry list;  (* chronological *)
}

let snapshot_payload_string t =
  Marshal.to_string
    {
      snap_use_delta = t.use_delta;
      snap_use_planner = t.use_planner;
      snap_program = t.program;
      snap_journal = List.rev t.journal;
    }
    []

let snapshot_string t =
  let payload = snapshot_payload_string t in
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf snapshot_magic;
  put_u32le buf (String.length payload);
  put_u32le buf (Int32.to_int (Storage.crc32 payload) land 0xFFFFFFFF);
  Buffer.add_string buf payload;
  Buffer.contents buf

let snapshot t oc = output_string oc (snapshot_string t)

(* The journal alone (chronological), marshalled — unlike a snapshot it
   carries no engine flags, so two engines driven by identical calls
   produce byte-identical dumps regardless of their evaluation strategy.
   The differential test suite uses this to prove the semi-naive engine
   journals exactly what the naive engine does. *)
(* No_sharing canonicalises the bytes: physical sharing between entries
   is an accident of how the engine was driven (live campaign vs replay
   vs recovery), and must not show up in a byte comparison. *)
let journal_dump t = Marshal.to_string (List.rev t.journal : jentry list) [ Marshal.No_sharing ]

(* Replay through the public entry points so each entry re-journals itself:
   a restored engine carries the same journal as the original and can be
   snapshotted again. Answers that were rejected at capture time are
   rejected identically on replay, so results are deliberately ignored. *)
let replay_entry t = function
  | J_run max_steps -> ignore (run ~max_steps t)
  | J_step -> ignore (step t)
  | J_supply (id, worker, values) -> ignore (supply t id ~worker values)
  | J_answer (id, worker, yes) -> ignore (answer_existence t id ~worker yes)
  | J_decline id -> decline t id
  | J_assign (id, worker, now) -> ignore (assign t id ~worker ~now)
  | J_reclaim now -> ignore (reclaim t ~now)
  | J_add_statement s -> add_statement t s
  | J_set_lease cfg -> set_lease_config t cfg
  | J_set_quorum q -> install_quorum t q ~aggregate:default_aggregate
  | J_set_monitor cfg -> set_monitor_exact t cfg
  | J_sample round -> ignore (monitor_sample t ~round)

(* Replay one entry, substituting the unserialisable aggregate closure
   when the entry installs a quorum policy — the policy itself (Fixed or
   Adaptive, scope, thresholds) is data and replays as journaled. *)
let replay_entry_with ~aggregate t = function
  | J_set_quorum (Some _ as q) ->
      install_quorum t q ~aggregate:(Option.value aggregate ~default:default_aggregate)
  | entry -> replay_entry t entry

let restore_payload ?builtins ?aggregate (p : snapshot_payload) =
  (* The program was admitted when the snapshot was taken; restore must
     not re-litigate lint policy (the restoring host may have stricter
     defaults than the one that accepted it). *)
  let t =
    load ?builtins ~lint:`Off ~use_delta:p.snap_use_delta
      ~use_planner:p.snap_use_planner p.snap_program
  in
  List.iter (replay_entry_with ~aggregate t) p.snap_journal;
  t

let payload_of_frame s =
  let n = String.length snapshot_magic in
  let len = String.length s in
  if len < n then
    if String.equal s (String.sub snapshot_magic 0 len)
       || String.equal s (String.sub snapshot_magic_v1 0 len)
    then snapshot_error Truncated
    else snapshot_error Not_a_snapshot
  else if String.equal (String.sub s 0 n) snapshot_magic_v1 then
    snapshot_error (Unsupported_version 1)
  else if not (String.equal (String.sub s 0 n) snapshot_magic) then
    snapshot_error Not_a_snapshot
  else if len < n + 8 then snapshot_error Truncated
  else
    let plen = get_u32le s n in
    let crc = get_u32le s (n + 4) in
    if len < n + 8 + plen then snapshot_error Truncated
    else
      let payload = String.sub s (n + 8) plen in
      if Int32.to_int (Storage.crc32 payload) land 0xFFFFFFFF <> crc then
        snapshot_error Checksum_mismatch
      else payload

let unmarshal_snapshot payload : snapshot_payload =
  try Marshal.from_string payload 0
  with Failure _ | Invalid_argument _ -> snapshot_error Corrupt_payload

let restore_string ?builtins ?aggregate s =
  restore_payload ?builtins ?aggregate (unmarshal_snapshot (payload_of_frame s))

let restore ?builtins ?aggregate ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file ->
     (* add_channel adds nothing on a short read; pick up the tail. *)
     (try
        let rec tail () =
          Buffer.add_channel buf ic 1;
          tail ()
        in
        tail ()
      with End_of_file -> ()));
  restore_string ?builtins ?aggregate (Buffer.contents buf)

(* --- Recovery (durable journal) --------------------------------------------- *)

(* The inverse of [state_string]: rebuild a live engine around the
   marshalled closure-free state. Plans, delta frontiers and statement
   memos start fresh — the fired memo (restored) is consulted at fire
   time, so re-derivation discovers but never re-fires old instances and
   the continued trace is byte-identical. Journal-derived metrics are
   recounted from the restored events; engine-local gauges (worker
   reliability per-mille) reappear at the next reputation update. *)
let restore_state ?builtins ?aggregate (p : state_payload) =
  let builtins = match builtins with Some b -> b | None -> Builtin.default () in
  let path_rels = Hashtbl.create 4 in
  List.iter
    (fun (g : Ast.game_decl) ->
      Hashtbl.replace path_rels (path_relation_name g.game_name) g.game_params)
    p.st_program.games;
  let added =
    List.filter_map
      (function J_add_statement s -> Some (s, Main) | _ -> None)
      p.st_journal
  in
  let statements = effective_statements p.st_program @ added in
  let infos =
    Array.of_list (List.map (make_info ~use_delta:p.st_use_delta) statements)
  in
  let tel = Telemetry.create () in
  let counting = fresh_count_state () in
  List.iter (count_event counting (Telemetry.metrics tel)) p.st_events;
  (* The monitor is derived state: the last installed config is in the
     journal (like added statements above) and its state is the fold of
     the restored events — byte-identical to the crashed engine's. *)
  let monitor_config =
    List.fold_left
      (fun acc e -> match e with J_set_monitor c -> c | _ -> acc)
      None p.st_journal
  in
  {
    db = p.st_db;
    builtins;
    use_delta = p.st_use_delta;
    use_planner = p.st_use_planner;
    infos;
    fired = p.st_fired;
    open_tbl = p.st_open_tbl;
    open_order = p.st_open_order;
    next_open = p.st_next_open;
    clock = p.st_clock;
    events = List.rev p.st_events;
    path_rels;
    views = p.st_program.views;
    program = p.st_program;
    leases = p.st_leases;
    quorum =
      Option.map
        (fun (policy, relations) ->
          {
            qs_policy = policy;
            qs_relations = relations;
            qs_aggregate = Option.value aggregate ~default:default_aggregate;
          })
        p.st_quorum;
    reputation = p.st_reputation;
    votes = p.st_votes;
    dead = p.st_dead;
    journal = List.rev p.st_journal;
    tel;
    counting;
    task_spans = Hashtbl.create 16;
    monitor = Option.map (fun c -> Monitor.of_events c p.st_events) monitor_config;
    wal = None;
    wal_compact_pending = false;
    (* The certificate is derived state: recovery keeps the default
       cross-check on and recomputes it from the restored program. *)
    use_analysis = true;
    analysis_cache = None;
  }

type recovery_stats = {
  base_segment : int;
  segments_scanned : int;
  records_replayed : int;
  truncated_bytes : int;
}

let recover ?builtins ?aggregate ?config ?storage dir =
  let j, (r : Journal.recovery) = Journal.recover ?config ?storage dir in
  let base, entries =
    match r.Journal.records with
    | { Journal.kind = Journal.Genesis | Journal.Snapshot; payload } :: rest ->
        (payload, rest)
    | _ ->
        (* Journal.recover guarantees the base record; anything else is a
           corrupt journal. *)
        raise (Journal.Error (Journal.No_valid_base dir))
  in
  let p : state_payload =
    try Marshal.from_string base 0
    with Failure _ | Invalid_argument _ -> snapshot_error Corrupt_payload
  in
  (* Replay before attaching the WAL: these entries are already durable,
     and replaying through the public API would otherwise re-append them. *)
  let t = restore_state ?builtins ?aggregate p in
  let replayed = ref 0 in
  List.iter
    (fun (record : Journal.record) ->
      match record.Journal.kind with
      | Journal.Entry ->
          incr replayed;
          let e : jentry =
            try Marshal.from_string record.Journal.payload 0
            with Failure _ | Invalid_argument _ -> snapshot_error Corrupt_payload
          in
          replay_entry_with ~aggregate t e
      | Journal.Genesis | Journal.Snapshot ->
          (* State records only ever open the base segment. *)
          snapshot_error Corrupt_payload)
    entries;
  attach_journal t j;
  let m = Telemetry.metrics t.tel in
  Telemetry.Metrics.incr m ~by:!replayed "recovery.records_replayed";
  Telemetry.Metrics.incr m ~by:r.Journal.truncated_bytes "recovery.truncated_bytes";
  if Telemetry.tracing t.tel then
    Telemetry.emit t.tel "journal-recover"
      ~attrs:
        [
          ("base_segment", string_of_int r.Journal.base_segment);
          ("records_replayed", string_of_int !replayed);
          ("truncated_bytes", string_of_int r.Journal.truncated_bytes);
        ]
      ~clock:t.clock;
  ( t,
    {
      base_segment = r.Journal.base_segment;
      segments_scanned = r.Journal.segments_scanned;
      records_replayed = !replayed;
      truncated_bytes = r.Journal.truncated_bytes;
    } )

(* --- Journal as a replayable script ----------------------------------------- *)

type journal_entry = jentry

let journal_entries t = List.rev t.journal

let apply_entry ?aggregate t (e : journal_entry) = replay_entry_with ~aggregate t e

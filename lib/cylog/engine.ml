type open_id = int

type origin = Main | Game_path of string | Game_payoff of string

type open_tuple = {
  id : open_id;
  statement : int;
  label : string option;
  relation : string;
  bound : Reldb.Tuple.t;
  open_attrs : string list;
  asked : Reldb.Value.t option;
  existence : bool;
  repeatable : bool;
  created_at : int;
}

type effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list
  | Open_created of open_id
  | No_effect

type event = {
  clock : int;
  statement : int;
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;
  effects : effect list;
  by_human : Reldb.Value.t option;
}

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Debug instrumentation: enable with Logs.Src.set_level on "cylog.engine". *)
let log_src = Logs.Src.create "cylog.engine" ~doc:"CyLog evaluation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type delta_state = {
  mutable frontiers : int array;  (* per positive atom: processed watermark *)
  mutable queue : Eval.matched list;  (* discovered, not yet fired; sorted *)
}

type stmt_info = {
  stmt : Ast.statement;
  origin : origin;
  prefix : Ast.literal list;
  tail : Ast.literal list;
  pos_preds : string list;  (* positive-atom relations, in body order *)
  body_rels : string list;
  payoff_dedup : bool;  (* unordered-support memo (game payoff rules) *)
  mutable exhausted_gen : int;  (* -1: never fully enumerated *)
  (* Compiled join plans, cached against the body relations' summed
     generation (statistics move with the data, so a plan is only valid
     while its relations are unchanged). Rescan uses one plan; a delta
     scan pins each atom in turn to a single row, so it keeps one plan per
     pinned position. *)
  mutable rescan_plan : Planner.t option;
  mutable rescan_plan_gen : int;
  mutable delta_plans : Planner.t array;
  mutable delta_plans_gen : int;
  delta : delta_state option;
      (* Seminaive evaluation for statements whose body relations are
         insert-only (no /update or /delete targets them anywhere in the
         program) and whose negations sit in the tail: instead of
         re-enumerating the whole join per step, only combinations
         involving a new row are discovered, queued in row order and fired
         one per step. Within one discovery batch the paper's
         earliest-rows tie-break is preserved; across batches instances
         fire in discovery order. *)
}

type t = {
  db : Reldb.Database.t;
  builtins : Builtin.registry;
  use_delta : bool;
  use_planner : bool;
  mutable infos : stmt_info array;
  updatable : (string, unit) Hashtbl.t;
  fired : (string, unit) Hashtbl.t;
  open_tbl : (open_id, open_tuple) Hashtbl.t;
  mutable open_order : open_id list;  (* reverse creation order *)
  mutable next_open : open_id;
  mutable clock : int;
  mutable events : event list;  (* reverse chronological *)
  path_rels : (string, string list) Hashtbl.t;  (* path relation -> params *)
  views : Ast.view list;
}

let path_relation_name game = "Path@" ^ game

(* --- Game-aspect desugaring -------------------------------------------- *)

let rewrite_atom game params (atom : Ast.atom) =
  if atom.pred <> "Path" then atom
  else
    {
      Ast.pred = path_relation_name game;
      args = List.map (fun p -> { Ast.attr = p; bind = Ast.Auto }) params @ atom.args;
    }

let rewrite_literal game params = function
  | Ast.Pos a -> Ast.Pos (rewrite_atom game params a)
  | Ast.Neg a -> Ast.Neg (rewrite_atom game params a)
  | (Ast.Cmp _ | Ast.Call _) as l -> l

let rewrite_head game params = function
  | Ast.Head_atom { atom; kind } ->
      Ast.Head_atom { atom = rewrite_atom game params atom; kind }
  | Ast.Head_payoff _ as h -> h

let rewrite_statement game params (s : Ast.statement) =
  {
    s with
    Ast.heads = List.map (rewrite_head game params) s.heads;
    body = List.map (rewrite_literal game params) s.body;
  }

let effective_statements (program : Ast.program) =
  let main = List.map (fun s -> (s, Main)) program.statements in
  let per_game (g : Ast.game_decl) =
    List.map
      (fun s -> (rewrite_statement g.game_name g.game_params s, Game_path g.game_name))
      g.path_rules
    @ List.map
        (fun s ->
          (rewrite_statement g.game_name g.game_params s, Game_payoff g.game_name))
        g.payoff_rules
  in
  main @ List.concat_map per_game program.games

(* --- Schema inference ---------------------------------------------------- *)

let add_attr seen order pred attr =
  let key = (pred, attr) in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.replace seen key ();
    let prev = try Hashtbl.find order pred with Not_found -> [] in
    Hashtbl.replace order pred (attr :: prev)
  end

let declare_relations db (program : Ast.program) statements path_rels =
  let seen = Hashtbl.create 64 and order = Hashtbl.create 16 in
  let scan_atom (a : Ast.atom) =
    List.iter (fun (arg : Ast.arg) -> add_attr seen order a.pred arg.attr) a.args
  in
  let scan_literal = function
    | Ast.Pos a | Ast.Neg a -> scan_atom a
    | Ast.Cmp _ | Ast.Call _ -> ()
  in
  let scan_head = function
    | Ast.Head_atom { atom; _ } -> scan_atom atom
    | Ast.Head_payoff _ -> ()
  in
  (* Path relations start with their Skolem parameters plus the bookkeeping
     columns of Figure 6. *)
  Hashtbl.iter
    (fun rel params ->
      List.iter (add_attr seen order rel) params;
      add_attr seen order rel "order";
      add_attr seen order rel "date")
    path_rels;
  List.iter
    (fun ((s : Ast.statement), _) ->
      List.iter scan_head s.heads;
      List.iter scan_literal s.body)
    statements;
  (* Explicit declarations win. *)
  let explicit = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.schema_decl) ->
      Hashtbl.replace explicit d.rel_name ();
      let attrs = List.map (fun (a, _, _) -> a) d.rel_attrs in
      let key = List.filter_map (fun (a, k, _) -> if k then Some a else None) d.rel_attrs in
      let autos = List.filter_map (fun (a, _, au) -> if au then Some a else None) d.rel_attrs in
      let auto_increment = match autos with [] -> None | [ a ] -> Some a | _ ->
        runtime_error "relation %s declares several auto attributes" d.rel_name
      in
      try ignore (Reldb.Database.declare db (Reldb.Schema.make ~key ?auto_increment ~name:d.rel_name attrs))
      with Invalid_argument m -> runtime_error "%s" m)
    program.schemas;
  (* Payoff bookkeeping. *)
  if not (Hashtbl.mem explicit "Payoff") then
    ignore
      (Reldb.Database.declare db
         (Reldb.Schema.make ~key:[ "player" ] ~name:"Payoff" [ "player"; "score" ]));
  Hashtbl.replace explicit "Payoff" ();
  (* Inferred relations: set semantics, no key; path relations auto-number
     their [order] column. *)
  Hashtbl.iter
    (fun pred rev_attrs ->
      if not (Hashtbl.mem explicit pred) then begin
        let attrs = List.rev rev_attrs in
        let auto_increment = if Hashtbl.mem path_rels pred then Some "order" else None in
        try ignore (Reldb.Database.declare db (Reldb.Schema.make ?auto_increment ~name:pred attrs))
        with Invalid_argument m -> runtime_error "%s" m
      end)
    order

(* --- Loading -------------------------------------------------------------- *)

let update_delete_targets (s : Ast.statement) =
  List.filter_map
    (function
      | Ast.Head_atom { atom; kind = Ast.Update | Ast.Delete } -> Some atom.Ast.pred
      | Ast.Head_atom _ | Ast.Head_payoff _ -> None)
    s.heads

let make_info ~use_delta ~updatable ((s : Ast.statement), origin) =
  let prefix, tail = Eval.split_tail s.body in
  let pos_preds =
    List.filter_map (function Ast.Pos a -> Some a.Ast.pred | _ -> None) prefix
  in
  let delta_ok =
    use_delta
    && pos_preds <> []
    && List.for_all (fun r -> not (Hashtbl.mem updatable r)) (Ast.body_preds s.body)
    && List.for_all (function Ast.Neg _ -> false | _ -> true) prefix
  in
  {
    stmt = s;
    origin;
    prefix;
    tail;
    pos_preds;
    body_rels = Ast.body_preds s.body;
    payoff_dedup =
      (match origin with Game_payoff _ -> true | Main | Game_path _ -> false);
    exhausted_gen = -1;
    rescan_plan = None;
    rescan_plan_gen = -1;
    delta_plans = [||];
    delta_plans_gen = -1;
    delta =
      (if delta_ok then
         Some { frontiers = Array.make (List.length pos_preds) 0; queue = [] }
       else None);
  }

let load ?builtins ?(use_delta = true) ?(use_planner = true) (program : Ast.program) =
  let builtins = match builtins with Some b -> b | None -> Builtin.default () in
  let path_rels = Hashtbl.create 4 in
  List.iter
    (fun (g : Ast.game_decl) ->
      Hashtbl.replace path_rels (path_relation_name g.game_name) g.game_params)
    program.games;
  let statements = effective_statements program in
  let db = Reldb.Database.create () in
  declare_relations db program statements path_rels;
  (* Relations some statement updates or deletes: their rows mutate in
     place, so statements reading them must re-enumerate (no delta). *)
  let updatable = Hashtbl.create 8 in
  List.iter
    (fun ((s : Ast.statement), _) ->
      List.iter (fun pred -> Hashtbl.replace updatable pred ()) (update_delete_targets s))
    statements;
  let infos = Array.of_list (List.map (make_info ~use_delta ~updatable) statements) in
  {
    db;
    builtins;
    use_delta;
    use_planner;
    infos;
    updatable;
    fired = Hashtbl.create 1024;
    open_tbl = Hashtbl.create 64;
    open_order = [];
    next_open = 1;
    clock = 0;
    events = [];
    path_rels;
    views = program.views;
  }

let database t = t.db
let statements t = Array.to_list (Array.map (fun i -> (i.stmt, i.origin)) t.infos)

(* --- Incremental statements (REPL support) --------------------------------- *)

let declare_for_statement t (s : Ast.statement) =
  let atoms =
    List.filter_map
      (function
        | Ast.Head_atom { atom; _ } -> Some atom
        | Ast.Head_payoff _ -> None)
      s.heads
    @ List.filter_map
        (function Ast.Pos a | Ast.Neg a -> Some a | Ast.Cmp _ | Ast.Call _ -> None)
        s.body
  in
  List.iter
    (fun (atom : Ast.atom) ->
      match Reldb.Database.find t.db atom.pred with
      | Some rel ->
          let schema = Reldb.Relation.schema rel in
          List.iter
            (fun (arg : Ast.arg) ->
              if not (Reldb.Schema.has_attribute schema arg.attr) then
                runtime_error
                  "relation %s has no attribute %s (schemas are fixed once declared)"
                  atom.pred arg.attr)
            atom.args
      | None ->
          let attrs =
            List.fold_left
              (fun acc (arg : Ast.arg) ->
                if List.mem arg.attr acc then acc else acc @ [ arg.attr ])
              [] atom.args
          in
          ignore (Reldb.Database.declare t.db (Reldb.Schema.make ~name:atom.pred attrs)))
    atoms

let add_statement t (s : Ast.statement) =
  declare_for_statement t s;
  (* A new update/delete target forces statements that read the relation
     back to the rescan strategy: their delta queues are dropped, which is
     safe because undischarged instances are not in the firing memo and
     rescan rediscovers them. *)
  let fresh_targets =
    List.filter (fun p -> not (Hashtbl.mem t.updatable p)) (update_delete_targets s)
  in
  List.iter (fun p -> Hashtbl.replace t.updatable p ()) fresh_targets;
  if fresh_targets <> [] then
    t.infos <-
      Array.map
        (fun info ->
          if
            info.delta <> None
            && List.exists (fun p -> List.mem p info.body_rels) fresh_targets
          then make_info ~use_delta:false ~updatable:t.updatable (info.stmt, info.origin)
          else info)
        t.infos;
  t.infos <-
    Array.append t.infos
      [| make_info ~use_delta:t.use_delta ~updatable:t.updatable (s, Main) |]

let builtins t = t.builtins
let clock t = t.clock
let events t = List.rev t.events

(* --- Memoisation ----------------------------------------------------------- *)

let fingerprint idx info (support : (string * int * int) list) =
  let support = if info.payoff_dedup then List.sort compare support else support in
  let buf = Buffer.create 32 in
  Buffer.add_string buf (string_of_int idx);
  List.iter
    (fun (pred, row, version) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf pred;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int row);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int version))
    support;
  Buffer.contents buf

let body_generation t info =
  List.fold_left
    (fun acc rel ->
      match Reldb.Database.find t.db rel with
      | Some r -> acc + Reldb.Relation.generation r
      | None -> acc)
    0 info.body_rels

(* --- Join plans -------------------------------------------------------------- *)

(* The cached rescan plan for [info], recompiled when any body relation
   changed since it was computed. Returns [None] when planning is off or
   the plan is the left-to-right order anyway (enumeration can then keep
   its early-stop discipline). *)
let rescan_plan t info ~gen =
  if not t.use_planner then None
  else begin
    (match info.rescan_plan with
    | Some _ when info.rescan_plan_gen = gen -> ()
    | _ ->
        info.rescan_plan <- Some (Planner.plan t.db info.prefix);
        info.rescan_plan_gen <- gen);
    match info.rescan_plan with
    | Some p when not p.Planner.identity -> Some p
    | Some _ | None -> None
  end

(* Per-pinned-atom plans for a delta scan: scanning new rows of atom [i]
   evaluates the body with atom [i] pinned to one row, so each position
   gets its own plan with that atom costed at a single row. *)
let delta_plans t info ~n_atoms ~gen =
  if not t.use_planner then None
  else begin
    if info.delta_plans_gen <> gen || Array.length info.delta_plans <> n_atoms then begin
      info.delta_plans <-
        Array.init n_atoms (fun i -> Planner.plan ~exact_atom:i t.db info.prefix);
      info.delta_plans_gen <- gen
    end;
    Some info.delta_plans
  end

(* --- Head application -------------------------------------------------------- *)

let relation_of t pred =
  match Reldb.Database.find t.db pred with
  | Some r -> r
  | None -> runtime_error "relation %s was never declared" pred

let eval_head_args t env (atom : Ast.atom) =
  (* Partition head arguments into evaluable bindings and open slots. *)
  List.fold_left
    (fun (bound, opens) (arg : Ast.arg) ->
      let expr = match arg.bind with Ast.Auto -> Ast.Var arg.attr | Ast.Bound e -> e in
      match Eval.try_eval_expr t.builtins env expr with
      | Some v -> ((arg.attr, v) :: bound, opens)
      | None -> (bound, arg.attr :: opens))
    ([], []) atom.args
  |> fun (bound, opens) -> (List.rev bound, List.rev opens)

let stamp_path_date t pred bound =
  (* Path tables record when each action happened (Figure 6). *)
  if Hashtbl.mem t.path_rels pred && not (List.mem_assoc "date" bound) then
    ("date", Reldb.Value.Int t.clock) :: bound
  else bound

let insert_tuple t pred bound =
  let rel = relation_of t pred in
  let bound = stamp_path_date t pred bound in
  match Reldb.Relation.insert rel (Reldb.Tuple.of_list bound) with
  | Reldb.Relation.Inserted i -> (
      match Reldb.Relation.row rel i with
      | Some tuple -> Inserted (pred, tuple)
      | None -> No_effect)
  | Reldb.Relation.Duplicate_tuple _ | Reldb.Relation.Duplicate_key _ -> No_effect

let update_tuple t pred bound =
  let rel = relation_of t pred in
  let schema = Reldb.Relation.schema rel in
  let key = Reldb.Schema.key schema in
  List.iter
    (fun k ->
      if not (List.mem_assoc k bound) then
        runtime_error "update of %s does not determine key attribute %s" pred k)
    key;
  (* /update only overwrites the attributes the head mentions; the rest of
     an existing tuple is preserved (Figure 16's tape-extension rule relies
     on this). *)
  let merged =
    match Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list bound) with
    | Some (_, existing) ->
        List.fold_left (fun acc (a, v) -> Reldb.Tuple.set acc a v) existing bound
    | None -> Reldb.Tuple.of_list bound
  in
  match Reldb.Relation.update rel merged with
  | Reldb.Relation.Replaced i | Reldb.Relation.Upserted i -> (
      match Reldb.Relation.row rel i with
      | Some tuple -> Updated (pred, tuple)
      | None -> No_effect)
  | Reldb.Relation.Unchanged _ -> No_effect

let delete_tuples t pred bound =
  let rel = relation_of t pred in
  let n = Reldb.Relation.delete_where rel (fun tuple -> Reldb.Tuple.matches tuple bound) in
  Deleted (pred, n)

let award_payoffs t env updates =
  let rel = relation_of t "Payoff" in
  let deltas =
    List.map
      (fun (player_var, delta_expr) ->
        let player =
          match Binding.find env player_var with
          | Some v -> v
          | None -> runtime_error "payoff player variable %s is unbound" player_var
        in
        let delta = Eval.eval_expr t.builtins env delta_expr in
        (player, delta))
      updates
  in
  List.iter
    (fun (player, delta) ->
      let current =
        match Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list [ ("player", player) ]) with
        | Some (_, tuple) -> (
            match Reldb.Tuple.get_or_null tuple "score" with
            | Reldb.Value.Null -> Reldb.Value.Int 0
            | v -> v)
        | None -> Reldb.Value.Int 0
      in
      let score =
        try Reldb.Value.add current delta
        with Invalid_argument m -> runtime_error "payoff accumulation: %s" m
      in
      ignore
        (Reldb.Relation.update rel
           (Reldb.Tuple.of_list [ ("player", player); ("score", score) ])))
    deltas;
  Awarded deltas

let create_open t idx (info : stmt_info) env (atom : Ast.atom) worker_expr bound opens =
  let asked =
    match worker_expr with
    | Some e -> Some (Eval.eval_expr t.builtins env e)
    | None -> None
  in
  (* Auto-increment attributes are machine-assigned at insertion time, not
     asked of the worker; an unmentioned auto key also makes the question a
     standing task (each answer yields a distinct tuple). *)
  let auto =
    Reldb.Schema.auto_increment (Reldb.Relation.schema (relation_of t atom.pred))
  in
  let opens, repeatable =
    match auto with
    | Some a when List.mem a opens -> (List.filter (fun x -> x <> a) opens, true)
    | Some _ | None -> (opens, false)
  in
  let id = t.next_open in
  t.next_open <- t.next_open + 1;
  let open_tuple =
    {
      id;
      statement = idx;
      label = info.stmt.Ast.label;
      relation = atom.pred;
      bound = Reldb.Tuple.of_list bound;
      open_attrs = opens;
      asked;
      existence = opens = [];
      repeatable;
      created_at = t.clock;
    }
  in
  Hashtbl.replace t.open_tbl id open_tuple;
  t.open_order <- id :: t.open_order;
  Open_created id

let apply_head t idx info env head =
  match head with
  | Ast.Head_payoff updates -> award_payoffs t env updates
  | Ast.Head_atom { atom; kind } -> (
      let bound, opens = eval_head_args t env atom in
      match kind with
      | Ast.Assert ->
          if opens <> [] then
            runtime_error "statement %s: head %s has unbound attributes %s (use /open)"
              (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
              atom.pred (String.concat ", " opens)
          else insert_tuple t atom.pred bound
      | Ast.Open worker -> create_open t idx info env atom worker bound opens
      | Ast.Update ->
          if opens <> [] then
            runtime_error "update of %s leaves attributes %s unbound" atom.pred
              (String.concat ", " opens)
          else update_tuple t atom.pred bound
      | Ast.Delete -> delete_tuples t atom.pred bound)

(* --- Stepping ------------------------------------------------------------- *)

let record_event t event = t.events <- event :: t.events

let check_tail t env tail =
  let rec loop env = function
    | [] -> Some env
    | lit :: rest -> (
        match Eval.check_filter t.builtins t.db env lit with
        | `Pass env' -> loop env' rest
        | `Fail -> None)
  in
  loop env tail

let fire t idx (info : stmt_info) (m : Eval.matched) fp =
  Hashtbl.replace t.fired fp ();
  t.clock <- t.clock + 1;
  Log.debug (fun k ->
      k "clock %d: firing statement %s with %s" t.clock
        (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
        (Binding.to_string m.env));
  match check_tail t m.env info.tail with
  | None ->
      let event =
        {
          clock = t.clock;
          statement = idx;
          label = info.stmt.Ast.label;
          valuation = Binding.to_list m.env;
          fired = false;
          effects = [];
          by_human = None;
        }
      in
      record_event t event;
      event
  | Some env ->
      let effects = List.map (apply_head t idx info env) info.stmt.Ast.heads in
      let event =
        {
          clock = t.clock;
          statement = idx;
          label = info.stmt.Ast.label;
          valuation = Binding.to_list env;
          fired = true;
          effects;
          by_human = None;
        }
      in
      record_event t event;
      event

(* Seminaive discovery: every prefix valuation involving at least one row
   at or above an atom's frontier is found exactly once — a combination
   with new rows at positions S is discovered at position [min S], where
   earlier atoms are restricted below their frontiers and later atoms are
   unrestricted. *)
let delta_scan t idx (info : stmt_info) (ds : delta_state) =
  let n_atoms = Array.length ds.frontiers in
  let highs =
    Array.of_list
      (List.map
         (fun pred ->
           match Reldb.Database.find t.db pred with
           | Some rel -> Reldb.Relation.high_water rel
           | None -> 0)
         info.pos_preds)
  in
  let discovered = ref [] in
  let plans = delta_plans t info ~n_atoms ~gen:(body_generation t info) in
  (try
     for i = 0 to n_atoms - 1 do
       let reordered =
         match plans with
         | Some a when not a.(i).Planner.identity ->
             Some (a.(i).Planner.literals, a.(i).Planner.order)
         | Some _ | None -> None
       in
       for r = ds.frontiers.(i) to highs.(i) - 1 do
         let plan j =
           if j < i then Eval.Below ds.frontiers.(j)
           else if j = i then Eval.Exactly r
           else Eval.All
         in
         Eval.enumerate ~plan ?reordered t.builtins t.db info.prefix
           ~init:Binding.empty
           ~f:(fun m ->
             discovered := m :: !discovered;
             `Continue)
       done
     done
   with Eval.Error msg ->
     runtime_error "statement %s: %s"
       (Option.value info.stmt.Ast.label ~default:(string_of_int idx))
       msg);
  ds.frontiers <- highs;
  if !discovered <> [] then begin
    let key (m : Eval.matched) = List.map (fun (_, row, ver) -> (row, ver)) m.support in
    let batch =
      List.sort (fun a b -> compare (key a) (key b)) (List.rev !discovered)
    in
    ds.queue <- ds.queue @ batch
  end

(* Pop the first queued instance that has not fired yet. *)
let rec pop_unfired t idx info (ds : delta_state) =
  match ds.queue with
  | [] -> None
  | m :: rest ->
      let fp = fingerprint idx info m.Eval.support in
      ds.queue <- rest;
      if Hashtbl.mem t.fired fp then pop_unfired t idx info ds else Some (m, fp)

let step t =
  let n = Array.length t.infos in
  let rec try_stmt i =
    if i >= n then None
    else
      let info = t.infos.(i) in
      match info.delta with
      | Some ds -> (
          if ds.queue = [] then delta_scan t i info ds;
          match pop_unfired t i info ds with
          | None -> try_stmt (i + 1)
          | Some (m, fp) -> (
              try Some (fire t i info m fp)
              with Eval.Error msg ->
                runtime_error "statement %s: %s"
                  (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                  msg))
      | None ->
          let gen = body_generation t info in
          if info.exhausted_gen = gen then try_stmt (i + 1)
          else begin
            let found = ref None in
            (try
               match rescan_plan t info ~gen with
               | Some p ->
                   (* Planned enumeration produces valuations out of
                      conflict-resolution order, so scan them all and keep
                      the unfired instance valued by the earliest rows —
                      exactly the instance left-to-right evaluation stops
                      at first. *)
                   let best_key = ref None in
                   Eval.enumerate
                     ~reordered:(p.Planner.literals, p.Planner.order)
                     t.builtins t.db info.prefix ~init:Binding.empty
                     ~f:(fun m ->
                       let fp = fingerprint i info m.support in
                       if Hashtbl.mem t.fired fp then `Continue
                       else begin
                         let key =
                           List.map (fun (_, row, ver) -> (row, ver)) m.support
                         in
                         (match !best_key with
                         | Some k0 when compare k0 key <= 0 -> ()
                         | _ ->
                             best_key := Some key;
                             found := Some (m, fp));
                         `Continue
                       end)
               | None ->
                   Eval.enumerate t.builtins t.db info.prefix ~init:Binding.empty
                     ~f:(fun m ->
                       let fp = fingerprint i info m.support in
                       if Hashtbl.mem t.fired fp then `Continue
                       else begin
                         found := Some (m, fp);
                         `Stop
                       end)
             with Eval.Error msg ->
               runtime_error "statement %s: %s"
                 (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                 msg);
            match !found with
            | None ->
                info.exhausted_gen <- gen;
                try_stmt (i + 1)
            | Some (m, fp) -> (
                try Some (fire t i info m fp)
                with Eval.Error msg ->
                  runtime_error "statement %s: %s"
                    (Option.value info.stmt.Ast.label ~default:(string_of_int i))
                    msg)
          end
  in
  try_stmt 0

let run ?(max_steps = 1_000_000) t =
  let rec loop steps =
    if steps >= max_steps then steps
    else match step t with Some _ -> loop (steps + 1) | None -> steps
  in
  loop 0

(* --- Open tuples ------------------------------------------------------------ *)

let pending t =
  List.rev_map (fun id -> Hashtbl.find_opt t.open_tbl id) t.open_order
  |> List.filter_map Fun.id

let pending_for t worker =
  List.filter
    (fun o -> match o.asked with None -> true | Some w -> Reldb.Value.equal w worker)
    (pending t)

let task_view t (o : open_tuple) =
  Views.render_open t.views ~relation:o.relation ~bound:o.bound ~open_attrs:o.open_attrs

let pending_since t ~after =
  (* open_order is in reverse creation order with strictly decreasing ids,
     so the new opens form a prefix. *)
  let rec take acc = function
    | id :: rest when id > after -> (
        match Hashtbl.find_opt t.open_tbl id with
        | Some o -> take (o :: acc) rest
        | None -> take acc rest)
    | _ -> acc
  in
  take [] t.open_order

let find_open t id = Hashtbl.find_opt t.open_tbl id

let resolve t id = Hashtbl.remove t.open_tbl id

let decline t id = resolve t id

let human_event t (o : open_tuple) worker effects valuation =
  Log.debug (fun k ->
      k "human %s answers open tuple %d on %s" (Reldb.Value.to_display worker) o.id
        o.relation);
  t.clock <- t.clock + 1;
  let event =
    {
      clock = t.clock;
      statement = o.statement;
      label = o.label;
      valuation;
      fired = true;
      effects;
      by_human = Some worker;
    }
  in
  record_event t event;
  event

let check_worker o worker =
  match o.asked with
  | Some w when not (Reldb.Value.equal w worker) ->
      Error
        (Format.asprintf "open tuple %d is designated for worker %a" o.id Reldb.Value.pp w)
  | Some _ | None -> Ok ()

let supply t id ~worker values =
  match find_open t id with
  | None -> Error (Printf.sprintf "no pending open tuple with id %d" id)
  | Some o -> (
      if o.existence then
        Error (Printf.sprintf "open tuple %d is an existence question" id)
      else
        match check_worker o worker with
        | Error _ as e -> e
        | Ok () ->
            let expected = List.sort String.compare o.open_attrs in
            let given = List.sort String.compare (List.map fst values) in
            if expected <> given then
              Error
                (Printf.sprintf "open tuple %d expects values for %s" id
                   (String.concat ", " o.open_attrs))
            else begin
              let bound = Reldb.Tuple.to_list o.bound @ values in
              let effect = insert_tuple t o.relation bound in
              if not o.repeatable then resolve t id;
              Ok (human_event t o worker [ effect ] values)
            end)

let answer_existence t id ~worker yes =
  match find_open t id with
  | None -> Error (Printf.sprintf "no pending open tuple with id %d" id)
  | Some o -> (
      if not o.existence then
        Error (Printf.sprintf "open tuple %d expects attribute values" id)
      else
        match check_worker o worker with
        | Error _ as e -> e
        | Ok () ->
            let effects =
              if yes then [ insert_tuple t o.relation (Reldb.Tuple.to_list o.bound) ]
              else [ No_effect ]
            in
            resolve t id;
            Ok (human_event t o worker effects []))

(* --- Payoffs ------------------------------------------------------------------ *)

let payoffs t =
  match Reldb.Database.find t.db "Payoff" with
  | None -> []
  | Some rel ->
      List.map
        (fun tuple ->
          (Reldb.Tuple.get_or_null tuple "player", Reldb.Tuple.get_or_null tuple "score"))
        (Reldb.Relation.tuples rel)

let payoff_of t player =
  match List.find_opt (fun (p, _) -> Reldb.Value.equal p player) (payoffs t) with
  | Some (_, score) -> score
  | None -> Reldb.Value.Int 0

(* --- Path tables --------------------------------------------------------------- *)

let game_instances t game =
  let rel_name = path_relation_name game in
  match (Reldb.Database.find t.db rel_name, Hashtbl.find_opt t.path_rels rel_name) with
  | Some rel, Some params ->
      let seen = Hashtbl.create 16 in
      Reldb.Relation.fold
        (fun acc _ tuple ->
          let key = Reldb.Tuple.project tuple params in
          if Hashtbl.mem seen key then acc
          else begin
            Hashtbl.replace seen key ();
            key :: acc
          end)
        [] rel
      |> List.rev
  | _ -> []

let path_table t game ~params =
  let rel_name = path_relation_name game in
  match Reldb.Database.find t.db rel_name with
  | None -> []
  | Some rel ->
      let rows = Reldb.Relation.filter (fun tuple -> Reldb.Tuple.matches tuple params) rel in
      List.mapi
        (fun i tuple -> Reldb.Tuple.set tuple "order" (Reldb.Value.Int (i + 1)))
        rows

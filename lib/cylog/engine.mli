(** The CyLog execution engine.

    The engine owns a database and an effective statement list (the
    program's rules followed by the desugared game-aspect rules) and fires
    one statement instance per {!step}, following the paper's conflict
    resolution: statements are prioritised by their position in the code,
    and among the valuations of one statement the instance valued by tuples
    at the earliest rows fires first (a closed-loop hierarchical linear
    strategy).

    Open-headed instances do not insert; they create {e open tuples} that
    suspend until a human supplies values through {!supply} (or answers an
    existence question through {!answer_existence}). Which pending open
    tuple is answered first — and with what values — is exactly the
    human half of the computation; the engine never chooses.

    Every fired or evaluated instance is memoised on the identity (row and
    update-version) of its supporting tuples, so an instance fires at most
    once per arrival of its support, reproducing the trace of Figure 13
    and the dataflow semantics of Section 9.1. *)

type t

type open_id = int

type origin = Main | Game_path of string | Game_payoff of string

type open_tuple = {
  id : open_id;
  statement : int;  (** index into {!statements} *)
  label : string option;
  relation : string;
  bound : Reldb.Tuple.t;  (** attributes already determined by logic *)
  open_attrs : string list;  (** attributes awaiting human values *)
  asked : Reldb.Value.t option;  (** designated worker ([/open[p]]), if any *)
  existence : bool;
      (** all attributes bound: the human is asked whether the tuple should
          exist (footnote 5 of the paper) *)
  repeatable : bool;
      (** the target relation auto-increments an unmentioned key (e.g.
          [Rules.rid]), so every answer creates a distinct tuple: the open
          tuple is a standing task that stays pending after {!supply} —
          how VRE lets workers enter unboundedly many extraction rules *)
  created_at : int;  (** engine clock at creation *)
}

(** The event vocabulary is defined in {!Cylog.Event} (a leaf module, so
    the campaign monitor can fold over the log from below the engine) and
    re-exported here with type equations: [Engine.Inserted] and
    [Event.Inserted] are the same constructor. *)
type effect = Event.effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int  (** relation, how many tuples *)
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list  (** player, delta *)
  | Open_created of open_id
  | No_effect  (** e.g. duplicate insertion *)
  | Vote_recorded of open_id * int
      (** a quorum task banked its [n]-th answer (see {!set_quorum}) *)
  | Dead_lettered of open_id * Lease.reason
      (** the task left the pending pool unanswered (see {!dead_letters}) *)
  | Adaptive_resolved of { open_id : open_id; posterior_pct : int; escalated : bool }
      (** an [Adaptive] quorum task resolved: early (the weakest answer
          slot's posterior reached tau — [posterior_pct] is that posterior
          in percent) or by escalation ([escalated = true]: the vote cap
          was hit and the fallback aggregate decided). Rides in the same
          event as the final [Vote_recorded] and the insertion, so every
          adaptive metric recounts from the journal (see
          {!metrics_of_events}). *)
  | Resolved of open_id
      (** a non-quorum task left the pending pool by answer — the marker
          that makes non-quorum retirement visible to event folds (the
          monitor's lifecycle tracing). Quorum resolutions keep their
          historical shape: a [Vote_recorded] riding with other effects. *)
  | Sampled of { round : int }
      (** a {!monitor_sample} round-boundary sample *)
  | Alert_fired of { round : int; alert : Event.alert }
      (** a monitor watchdog fired; the alert carries observed value and
          limit, so the recount fold reads it back instead of re-deciding
          (the [Adaptive_resolved] precedent) *)

type event = Event.event = {
  clock : int;
  statement : int;  (** [-1] for monitor sample events *)
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;  (** false: a trailing filter rejected the instance *)
  effects : effect list;
  by_human : Reldb.Value.t option;  (** worker for human-caused events *)
}

exception Runtime_error of string

(** Why {!supply}/{!answer_existence} rejected an answer. Typed so
    simulators and quality layers can react per cause instead of parsing
    message strings. *)
type reject =
  | Stale of open_id  (** no pending open tuple with that id *)
  | Not_lease_holder
      (** the task is designated for, or leased at capacity to, others *)
  | Wrong_question
      (** [supply] on an existence question, or [answer_existence] on a
          value question *)
  | Already_voted  (** this worker already answered this quorum task *)
  | Wrong_attrs of { expected : string list; given : string list }
      (** attribute sets differ (both sorted) *)
  | Type_mismatch of { attr : string; value : Reldb.Value.t }
      (** the value's type contradicts the relation's existing column *)

val reject_to_string : reject -> string
val pp_reject : Format.formatter -> reject -> unit

type aggregate = (string * Reldb.Value.t list) list -> (string * Reldb.Value.t) list
(** Aggregation policy for quorum tasks: per open attribute, the votes in
    arrival order; returns the chosen value per attribute. *)

type quorum = {
  k : int;  (** answers collected before resolving; [k > 1] to take effect *)
  relations : string list option;  (** limit to these relations; [None] = all *)
  aggregate : aggregate;
}

(** How a quorum task decides it has heard enough:

    - [Fixed k] — the historical policy: resolve on exactly [k] answers
      through the aggregate. {!set_quorum} installs this; behaviour is
      unchanged from before adaptive policies existed.
    - [Adaptive _] — confidence-based stopping: after each answer
      (from [min_votes] on) the banked votes are weighed by each voter's
      estimated reliability ([Quality.Model], learnt online from agreement
      with past resolutions) and the task resolves as soon as every open
      attribute's top value reaches posterior [tau]
      ([Quality.Decide]); a task still unresolved at [max_votes] answers
      {e escalates}: the fallback [aggregate] decides (plurality for
      values, strict majority for existence). [max_votes] is also the
      task's lease capacity. *)
type quorum_policy =
  | Fixed of int
  | Adaptive of { tau : float; min_votes : int; max_votes : int }

val default_aggregate : aggregate
(** Plurality per attribute, earliest vote winning ties — the engine-level
    counterpart of [Quality.Aggregate.majority]. *)

val load : ?builtins:Builtin.registry -> ?use_delta:bool ->
  ?use_planner:bool -> ?lint:[ `Strict | `Warn | `Off ] ->
  ?analysis:bool ->
  ?journal:string -> ?journal_config:Journal.config -> Ast.program -> t
(** Build an engine: declare schemas (inferring schemas of undeclared
    relations from usage), desugar game aspects into path/payoff statements,
    and declare the [Payoff] relation and per-game path tables.

    [journal] starts a durable write-ahead log in the given directory (see
    {!Journal} and {!journal_start}): every journaled mutation is appended
    as it happens, so a crash loses at most the entries after the WAL's
    last fsync — recover with {!recover}. [journal_config] tunes fsync
    policy, segment rotation and compaction (default
    {!Journal.default_config}).
    @raise Journal.Error ([Journal_exists]) when the directory already
    holds a journal.

    [lint] (default [`Strict]) runs {!Lint.check} over the source program
    first: [`Strict] raises {!Lint.Rejected} when any error-severity
    diagnostic is reported (warnings are logged); [`Warn] only logs every
    diagnostic through [Logs]; [`Off] skips the analysis entirely.
    Statements added later through {!add_statement} are not linted — the
    REPL's incremental path keeps its runtime checks.

    [analysis] (default [true]) threads {!Analysis}'s budget certificate
    into the engine: {!certificate} exposes it (recomputed under the
    installed quorum policy, invalidated by {!add_statement} and quorum
    changes), {!set_monitor} defaults the monitor's certified budget from
    it, and every accepted answer cross-checks the accepted-answer count
    against the certified bound, counting breaches in the engine-local
    [analysis.bound.violations] counter (which soundness keeps at 0; an
    apparent breach first refreshes the certificate with live database
    cardinalities, so host inserts through the API never false-positive).

    [use_delta] (default [true]) enables seminaive (differential)
    evaluation for every statement with at least one positive body atom:
    the engine keeps a ΔR frontier per body atom and drives rule firing
    by new-facts-only joins, merging discoveries into a pending set
    ordered by support key. Statements whose body relations are targets
    of /update or /delete stay differential between destructive
    mutations and re-derive — scoped to themselves, not the program —
    when one lands. The two strategies are trace-identical: with [false]
    every statement re-enumerates its whole join per step (the reference
    strategy — asymptotically slower but the differential-testing
    baseline), and produces the same events, journal and snapshots byte
    for byte.

    [use_planner] (default [true]) enables cost-based reordering of each
    statement body via {!Planner.plan}, with plans cached per statement
    and recomputed when the body's relations change. Planning never
    changes semantics — valuations are replayed over the original body
    order and the conflict-resolution winner is selected explicitly (see
    {!Eval.enumerate}) — so [false] exists purely as the reference
    strategy for differential testing and ablation.
    @raise Runtime_error on inconsistent declarations.
    @raise Lint.Rejected in [`Strict] mode on ill-formed programs. *)

val database : t -> Reldb.Database.t
(** The live database (shared, not a copy). *)

val statements : t -> (Ast.statement * origin) list
(** Effective statements in priority order. *)

val add_statement : t -> Ast.statement -> unit
(** Append a statement at the lowest priority — the REPL building block.
    Relations it mentions for the first time are declared by inference;
    using an unknown attribute of an existing relation is an error. A new
    [/update]/[/delete] target downgrades delta-evaluated readers of that
    relation to the rescan strategy. Game aspects cannot be added
    incrementally. @raise Runtime_error on schema conflicts. *)

val builtins : t -> Builtin.registry
(** The builtin registry in use. *)

val certificate : t -> Analysis.certificate option
(** The program's budget certificate ({!Analysis.analyze} of the loaded
    program plus incrementally added statements, charged under the
    installed quorum policy), or [None] when the engine was loaded with
    [~analysis:false]. Cached; recomputed after {!add_statement} or a
    quorum change. *)

val clock : t -> int
(** Logical clock: one tick per machine step or human answer. *)

val step : t -> event option
(** Fire (or evaluate-and-reject) the single highest-priority new instance;
    [None] when no machine work remains. *)

val run : ?max_steps:int -> t -> int * [ `Quiescent | `Capped ]
(** Step until quiescent; returns the number of steps taken and whether
    evaluation actually quiesced or was cut off at [max_steps] (default
    1_000_000) with machine work still pending — callers that [ignore] the
    distinction cannot tell a finished campaign from a truncated one. *)

val pending : t -> open_tuple list
(** Unresolved open tuples, oldest first. *)

val pending_for : t -> Reldb.Value.t -> open_tuple list
(** Pending open tuples a given worker may answer (designated for them or
    undesignated). *)

val pending_since : t -> after:open_id -> open_tuple list
(** Pending open tuples with id strictly greater than [after], ascending —
    lets a polling client ingest new work incrementally instead of
    rescanning the whole pool. *)

val find_open : t -> open_id -> open_tuple option
(** Look up a pending open tuple. *)

val task_view : t -> open_tuple -> string option
(** Worker-facing presentation of an open tuple, rendered from the
    program's views section (Figure 2's forms); [None] when the relation
    declares no view. *)

val supply : t -> open_id -> worker:Reldb.Value.t ->
  (string * Reldb.Value.t) list -> (event, reject) result
(** [supply t id ~worker values] valuates a pending open tuple: the human
    consequence. [values] must bind exactly the open attributes; the
    designated worker (if any) must match, and when the lease runtime is
    on ({!set_lease_config}) the task must not be leased at capacity to
    other workers. On success the completed tuple is inserted and machine
    evaluation may resume. Auto-increment attributes are filled by the
    machine, never asked. A {!field-repeatable} open tuple stays pending;
    others resolve.

    Under a quorum policy ({!set_quorum}) an eligible task banks each
    answer as a vote ([Vote_recorded] effect) and only the [k]-th answer
    aggregates and inserts. [Wrong_attrs]/[Type_mismatch] rejections count
    against the task's rejection budget when leases are configured. *)

val answer_existence : t -> open_id -> worker:Reldb.Value.t -> bool ->
  (event, reject) result
(** Answer an existence question: [true] inserts the bound tuple, [false]
    just resolves the open tuple. Quorum tasks resolve on the [k]-th vote
    by strict majority of yes-votes. *)

val decline : t -> open_id -> unit
(** Drop a pending open tuple without an answer (e.g. end of campaign).
    The task moves to the dead-letter pool with reason {!Lease.Declined}
    and leaves a [Dead_lettered] event in the log; declining an unknown id
    is a no-op. *)

(** {1 Leases, dead letters, quorum}

    Off by default — an engine behaves exactly as before until
    {!set_lease_config}/{!set_quorum} are called. Logical time ([now]) is
    caller-supplied and monotone: the crowd simulator uses its round
    number. *)

val set_lease_config : t -> Lease.config option -> unit
(** Turn the lease runtime on (fresh lease table) or off. *)

val lease_config : t -> Lease.config option

val set_quorum : t -> quorum option -> unit
(** Install a redundant-assignment policy: eligible tasks (undesignated,
    non-repeatable, in [relations] if given) resolve through [aggregate]
    after [k] answers — i.e. the [Fixed k] policy. [None] turns the quorum
    runtime off. *)

val set_quorum_policy :
  t -> ?relations:string list -> ?aggregate:aggregate -> quorum_policy -> unit
(** Install a quorum policy directly; [Adaptive _] is only reachable here.
    [aggregate] (default {!default_aggregate}) resolves [Fixed] tasks and
    is the escalation fallback of [Adaptive] tasks.
    @raise Runtime_error on an ill-formed adaptive config
    (needs [0 < tau <= 1] and [1 <= min_votes <= max_votes]). *)

val quorum_of : t -> quorum option
(** The installed policy, flattened to the legacy record: [k] is the vote
    cap ([k] of [Fixed k], [max_votes] of [Adaptive]). *)

val quorum_policy_of : t -> quorum_policy option

(** {2 Quality model}

    The engine scores every voter on a resolved quorum task against the
    chosen answer ([Quality.Model]'s Beta-posterior reliability — also
    surfaced as [quality.reliability.worker.*] per-mille gauges). The
    model is derived state: journal replay ({!restore}) rebuilds it
    observation for observation. *)

val worker_reliability : t -> Reldb.Value.t -> float
(** Estimated accuracy of a worker (the prior mean if never scored). *)

val reliability_table : t -> (string * float * int) list
(** Every scored worker (sorted): display name, reliability, observation
    count. *)

val task_uncertainty : t -> open_id -> float
(** How unsettled a pending task's answer is: the maximum over its answer
    slots of [1 - top posterior] given the banked votes ([1.0] with no
    votes, [0.0] for unknown ids) — the router's uncertainty-sampling
    score. *)

val task_posteriors : t -> open_id -> (string * (Reldb.Value.t * float) list) list
(** Per open attribute (or [("(exists)", ...)] for existence questions),
    the candidate posteriors of the banked votes, best first. Empty for
    unknown ids or tasks without votes. *)

val votes_banked : t -> open_id -> int
(** Votes banked so far on a pending quorum task (0 otherwise). *)

val has_voted : t -> open_id -> worker:Reldb.Value.t -> bool
(** Whether a worker already has a banked vote on a pending task — the
    router's pre-check for the [Already_voted] rejection. *)

type assign_error =
  [ `Stale  (** no such pending task *)
  | `Dead of Lease.reason  (** the task was dead-lettered *)
  | `Backoff of int  (** reassignable at that round, not before *)
  | `Held of Reldb.Value.t  (** leased at capacity; one current holder *) ]

val assign : t -> open_id -> worker:Reldb.Value.t -> now:int ->
  (Lease.lease, assign_error) result
(** Lease a pending task to [worker] until [now + ttl]. Quorum-eligible
    tasks carry [k] lease slots (redundant assignment); all others are
    exclusive. Re-assigning to a holder renews their deadline.
    @raise Runtime_error when the lease runtime is not configured. *)

val reclaim : t -> now:int -> (open_id * [ `Retry of int | `Dead of Lease.reason ]) list
(** Expire overdue leases ({!Lease.reclaim}); tasks over their retry
    budget are dead-lettered (with a [Dead_lettered] event). Call once per
    round before assigning. Without the lease runtime, returns []. *)

val dead_letters : t -> (open_tuple * Lease.reason) list
(** Tasks dropped from the pending pool without resolution, in
    dead-lettering order — the campaign post-mortem. *)

val payoffs : t -> (Reldb.Value.t * Reldb.Value.t) list
(** Accumulated payoff per player, from the [Payoff] relation. *)

val payoff_of : t -> Reldb.Value.t -> Reldb.Value.t
(** One player's payoff; [Int 0] if they never received any. *)

val events : t -> event list
(** All events, chronological. *)

val event_count : t -> int
(** Number of events recorded so far — the cursor coordinate of
    {!events_since}. *)

val events_since : t -> after:int -> event list
(** The events with index [>= after] (0-based, chronological) — an
    incremental read of the log for polling consumers (the campaign
    server's [resolve_poll]); [events_since t ~after:0 = events t]. *)

(** {1 Telemetry}

    Every engine carries a {!Cylog.Telemetry.t}: a metrics registry that is
    always on (single boolean test per update when disabled) and a tracing
    sink that defaults to {!Cylog.Telemetry.Sink.null} (spans cost one
    pointer compare until a real sink is installed). See
    [docs/OBSERVABILITY.md] for the span model and the metric names. *)

val telemetry : t -> Telemetry.t

val metrics : t -> Telemetry.Metrics.t
(** Shorthand for [Telemetry.metrics (telemetry t)]. *)

val set_sink : t -> Telemetry.Sink.t -> unit
(** Install a tracing sink (ring buffer, JSON-lines writer, callback).
    Spans carry deterministic sequence ids and logical-clock timestamps,
    so traces are replay-stable. *)

val metrics_of_events : event list -> Telemetry.Metrics.t
(** Recompute the journal-derived metrics from an event list. For any
    engine whose registry stayed enabled for the whole run, the
    {!journal_derived} subset of the live registry equals
    [metrics_of_events (events t)] — the invariant the telemetry
    differential tests pin down, and what makes [snapshot]/[restore]
    reproduce identical counters. *)

val journal_derived : string -> bool
(** Whether a metric name is recomputable from {!events} (as opposed to
    engine-local operational counters such as planner cache hits, lease
    refusals or rejected answers, which leave no event). *)

(** {1 Campaign monitor}

    The cost/latency/quality dashboard of a running campaign — see
    {!Cylog.Monitor} for the series and alert catalogue. The monitor is
    {e derived} state: installing one backfills it by folding the whole
    event log, snapshots never serialise it, and restore/recovery rebuild
    it from the replayed events — so
    [Monitor.view (Option.get (monitor t))] always equals
    [Monitor.view (Monitor.of_events cfg (events t))]. *)

val set_monitor : t -> Monitor.config option -> unit
(** Install (or remove, with [None]) the campaign monitor. Journaled;
    installation mid-campaign still reports full history (the event log
    is folded from the start). *)

val monitor : t -> Monitor.t option

val monitor_json : t -> string
(** {!Cylog.Monitor.to_json} of the installed monitor; ["null"] when none
    is installed. *)

val monitor_sample : t -> round:int -> Monitor.firing list
(** Take a round-boundary sample: run the armed watchdogs, then record
    one journaled event whose [Sampled]/[Alert_fired] effects carry the
    series point and any verdicts — the crowd simulator calls this once
    per round. Returns the alerts that fired {e this} sample (each alert
    kind fires at most once per campaign) so the caller can warn, pause
    or stop. No-op returning [[]] without an installed monitor or with
    the metrics registry disabled. *)

val explain : t -> string
(** Render the engine's current evaluation evidence: per rule the
    strategy (delta/rescan), the join order the planner picks against the
    live statistics with its row estimates, the compiled-plan cache
    status, and — for delta statements — the delta view: each atom's
    frontier, which atoms served as the delta atom in the last productive
    round (with the ΔR sizes consumed), whether that round ran
    differentially or fell back to a scoped re-derivation, and how many
    discovered instances are still pending; then the lease config, quorum
    policy and pending-task vote counts. Observation-only: never touches
    the plan caches or metrics. *)

val pp_explain : Format.formatter -> t -> unit

val game_instances : t -> string -> Reldb.Tuple.t list
(** Distinct Skolem-parameter tuples for which a game instance has a
    non-empty path, in first-play order. *)

val path_table : t -> string -> params:(string * Reldb.Value.t) list -> Reldb.Tuple.t list
(** The path table of one game instance, in play order, with the per-
    instance [order] column renumbered from 1 as in Figure 6. *)

val path_relation_name : string -> string
(** Name of the internal relation backing a game's path tables. *)

(** {1 Checkpoint / replay}

    A snapshot is the loaded program plus the journal of every
    externally-triggered mutation ([run]/[step]/[supply]/
    [answer_existence]/[decline]/[assign]/[reclaim]/[add_statement]/
    [set_lease_config]/[set_quorum]/[set_quorum_policy], in order).
    [restore] replays the
    journal through the public API; because evaluation is deterministic
    the restored engine reproduces the original event trace byte for byte
    and can itself be snapshotted again. The format is the
    ["CYLOG-SNAPSHOT/2\n"] magic, the payload length and its CRC-32
    (little-endian u32 each), then the marshalled payload — so corruption,
    truncation and version skew are each detected and reported as a typed
    {!Snapshot_error} instead of an arbitrary [Marshal] failure.

    Closures are not serialised: pass [?builtins] matching the original
    engine's registry, and [?aggregate] to reinstate a custom aggregation
    hook (the default plurality vote is assumed otherwise). The quorum
    {e policy} itself — [Fixed] or [Adaptive], with its scope and
    thresholds — is plain data and replays from the journal without help;
    [?aggregate] only substitutes the closure it resolves ([Fixed]) or
    falls back to on escalation ([Adaptive]). Worker reputation is derived
    state and is rebuilt by the replay byte for byte. *)

type snapshot_reason =
  | Not_a_snapshot  (** the magic does not open any snapshot format *)
  | Unsupported_version of int
      (** a CyLog snapshot, but from an incompatible format version
          (e.g. a pre-checksum v1 checkpoint) *)
  | Truncated  (** shorter than its header or declared payload length *)
  | Checksum_mismatch  (** framing intact but the payload CRC disagrees *)
  | Corrupt_payload  (** checksum passed yet unmarshalling failed *)

exception Snapshot_error of snapshot_reason

val snapshot_reason_to_string : snapshot_reason -> string

val snapshot : t -> out_channel -> unit

val snapshot_string : t -> string

val journal_dump : t -> string
(** The journal alone (chronological), marshalled without sharing so the
    bytes are canonical: two engines holding logically equal journals
    produce byte-identical dumps whether they were driven live, replayed
    from a snapshot, or recovered from a WAL. Unlike {!snapshot_string}
    it carries no engine flags — the comparison surface for the
    differential tests pitting semi-naive delta evaluation against full
    rescans, and for the crash-point harness's prefix checks. *)

val restore : ?builtins:Builtin.registry -> ?aggregate:aggregate -> in_channel -> t
(** @raise Snapshot_error on a corrupt, truncated or version-skewed
    snapshot. *)

val restore_string : ?builtins:Builtin.registry -> ?aggregate:aggregate -> string -> t
(** @raise Snapshot_error on a corrupt, truncated or version-skewed
    snapshot. *)

(** {1 Durable journal (WAL) and crash recovery}

    With a {!Journal} attached, every journaled mutation is appended to an
    on-disk segmented WAL {e as it is emitted} — the volatile journal
    above and the durable one always agree — and compaction periodically
    folds the resolved state (quorums, leases, dead letters, the database)
    into a materialised snapshot record so recovery costs O(live state),
    not O(journal length). See docs/DURABILITY.md for the format and the
    crash-consistency guarantees. *)

val journal_start :
  ?config:Journal.config -> ?storage:(module Storage.S) -> t -> string -> unit
(** Start a fresh durable journal for this engine in the given directory
    (its genesis record is the engine's current state) and attach it, as
    [load ?journal] does — exposed separately so tests and tools can
    supply a non-default {!Storage} (e.g. the fault-injecting simulator).
    @raise Journal.Error ([Journal_exists]) on a non-empty directory. *)

val attach_journal : t -> Journal.t -> unit
(** Route every subsequently journaled mutation to this WAL and point its
    telemetry at the engine (counters [journal.*], spans
    [journal-append]/[journal-rotate]/[journal-compact] on the engine's
    logical clock). *)

val durable_journal : t -> Journal.t option
(** The attached WAL, for syncing/closing and {!Journal.stats}. *)

val compact_journal : t -> unit
(** Fold the engine's current state into the attached WAL as a fresh base
    snapshot immediately ({!Journal.compact}) — the operator's "checkpoint
    now" verb (e.g. before handing a shard's journal to recovery), on top
    of the automatic [compact_every] policy. No-op without an attached
    journal. *)

type recovery_stats = {
  base_segment : int;  (** segment whose snapshot seeded the state *)
  segments_scanned : int;
  records_replayed : int;  (** WAL entries re-applied after the base *)
  truncated_bytes : int;  (** torn tail discarded by {!Journal.recover} *)
}

val recover :
  ?builtins:Builtin.registry -> ?aggregate:aggregate ->
  ?config:Journal.config -> ?storage:(module Storage.S) -> string ->
  t * recovery_stats
(** Crash-consistent recovery from a journal directory: run
    {!Journal.recover} (checksum scan, torn-tail truncation), rebuild the
    engine from the base genesis/snapshot record, replay the surviving
    entries through the public API, and re-attach the journal for further
    durable appends. The recovered engine is byte-trace-identical to the
    crashed one at its last durable entry: continuing the same campaign
    reproduces the original events exactly. [?builtins]/[?aggregate] are
    as for {!restore}; counters [recovery.records_replayed] and
    [recovery.truncated_bytes] and a [journal-recover] span (traced runs)
    record what recovery did.
    @raise Journal.Error on an empty, gapped or corrupt journal.
    @raise Snapshot_error when a checksum-valid record fails to
    unmarshal. *)

(** {1 The journal as a replayable script}

    The journal is exactly the campaign's externally-triggered inputs, so
    a list of entries is a replayable script: the crash-point harness
    re-drives the tail of a campaign onto a recovered engine and checks
    the traces match. *)

type journal_entry

val journal_entries : t -> journal_entry list
(** The journal so far, chronological. *)

val apply_entry : ?aggregate:aggregate -> t -> journal_entry -> unit
(** Re-apply one entry through the public API (re-journaling it, exactly
    like {!restore}'s replay). Quorum-installing entries replay with
    [aggregate] (default: the built-in plurality). *)

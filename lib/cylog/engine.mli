(** The CyLog execution engine.

    The engine owns a database and an effective statement list (the
    program's rules followed by the desugared game-aspect rules) and fires
    one statement instance per {!step}, following the paper's conflict
    resolution: statements are prioritised by their position in the code,
    and among the valuations of one statement the instance valued by tuples
    at the earliest rows fires first (a closed-loop hierarchical linear
    strategy).

    Open-headed instances do not insert; they create {e open tuples} that
    suspend until a human supplies values through {!supply} (or answers an
    existence question through {!answer_existence}). Which pending open
    tuple is answered first — and with what values — is exactly the
    human half of the computation; the engine never chooses.

    Every fired or evaluated instance is memoised on the identity (row and
    update-version) of its supporting tuples, so an instance fires at most
    once per arrival of its support, reproducing the trace of Figure 13
    and the dataflow semantics of Section 9.1. *)

type t

type open_id = int

type origin = Main | Game_path of string | Game_payoff of string

type open_tuple = {
  id : open_id;
  statement : int;  (** index into {!statements} *)
  label : string option;
  relation : string;
  bound : Reldb.Tuple.t;  (** attributes already determined by logic *)
  open_attrs : string list;  (** attributes awaiting human values *)
  asked : Reldb.Value.t option;  (** designated worker ([/open[p]]), if any *)
  existence : bool;
      (** all attributes bound: the human is asked whether the tuple should
          exist (footnote 5 of the paper) *)
  repeatable : bool;
      (** the target relation auto-increments an unmentioned key (e.g.
          [Rules.rid]), so every answer creates a distinct tuple: the open
          tuple is a standing task that stays pending after {!supply} —
          how VRE lets workers enter unboundedly many extraction rules *)
  created_at : int;  (** engine clock at creation *)
}

type effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int  (** relation, how many tuples *)
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list  (** player, delta *)
  | Open_created of open_id
  | No_effect  (** e.g. duplicate insertion *)

type event = {
  clock : int;
  statement : int;
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;  (** false: a trailing filter rejected the instance *)
  effects : effect list;
  by_human : Reldb.Value.t option;  (** worker for human-caused events *)
}

exception Runtime_error of string

val load : ?builtins:Builtin.registry -> ?use_delta:bool ->
  ?use_planner:bool -> Ast.program -> t
(** Build an engine: declare schemas (inferring schemas of undeclared
    relations from usage), desugar game aspects into path/payoff statements,
    and declare the [Payoff] relation and per-game path tables.

    [use_delta] (default [true]) enables seminaive evaluation for
    statements over insert-only relations; with [false] every statement
    re-enumerates its whole join per step (the reference strategy —
    asymptotically slower but useful for differential testing and
    ablation).

    [use_planner] (default [true]) enables cost-based reordering of each
    statement body via {!Planner.plan}, with plans cached per statement
    and recomputed when the body's relations change. Planning never
    changes semantics — valuations are replayed over the original body
    order and the conflict-resolution winner is selected explicitly (see
    {!Eval.enumerate}) — so [false] exists purely as the reference
    strategy for differential testing and ablation.
    @raise Runtime_error on inconsistent declarations. *)

val database : t -> Reldb.Database.t
(** The live database (shared, not a copy). *)

val statements : t -> (Ast.statement * origin) list
(** Effective statements in priority order. *)

val add_statement : t -> Ast.statement -> unit
(** Append a statement at the lowest priority — the REPL building block.
    Relations it mentions for the first time are declared by inference;
    using an unknown attribute of an existing relation is an error. A new
    [/update]/[/delete] target downgrades delta-evaluated readers of that
    relation to the rescan strategy. Game aspects cannot be added
    incrementally. @raise Runtime_error on schema conflicts. *)

val builtins : t -> Builtin.registry
(** The builtin registry in use. *)

val clock : t -> int
(** Logical clock: one tick per machine step or human answer. *)

val step : t -> event option
(** Fire (or evaluate-and-reject) the single highest-priority new instance;
    [None] when no machine work remains. *)

val run : ?max_steps:int -> t -> int
(** Step until quiescent; returns the number of steps taken. Stops early at
    [max_steps] (default 1_000_000). *)

val pending : t -> open_tuple list
(** Unresolved open tuples, oldest first. *)

val pending_for : t -> Reldb.Value.t -> open_tuple list
(** Pending open tuples a given worker may answer (designated for them or
    undesignated). *)

val pending_since : t -> after:open_id -> open_tuple list
(** Pending open tuples with id strictly greater than [after], ascending —
    lets a polling client ingest new work incrementally instead of
    rescanning the whole pool. *)

val find_open : t -> open_id -> open_tuple option
(** Look up a pending open tuple. *)

val task_view : t -> open_tuple -> string option
(** Worker-facing presentation of an open tuple, rendered from the
    program's views section (Figure 2's forms); [None] when the relation
    declares no view. *)

val supply : t -> open_id -> worker:Reldb.Value.t ->
  (string * Reldb.Value.t) list -> (event, string) result
(** [supply t id ~worker values] valuates a pending open tuple: the human
    consequence. [values] must bind exactly the open attributes; the
    designated worker (if any) must match. On success the completed tuple
    is inserted and machine evaluation may resume. Auto-increment
    attributes are filled by the machine, never asked. A {!field-repeatable}
    open tuple stays pending; others resolve. *)

val answer_existence : t -> open_id -> worker:Reldb.Value.t -> bool ->
  (event, string) result
(** Answer an existence question: [true] inserts the bound tuple, [false]
    just resolves the open tuple. *)

val decline : t -> open_id -> unit
(** Drop a pending open tuple without an answer (e.g. end of campaign). *)

val payoffs : t -> (Reldb.Value.t * Reldb.Value.t) list
(** Accumulated payoff per player, from the [Payoff] relation. *)

val payoff_of : t -> Reldb.Value.t -> Reldb.Value.t
(** One player's payoff; [Int 0] if they never received any. *)

val events : t -> event list
(** All events, chronological. *)

val game_instances : t -> string -> Reldb.Tuple.t list
(** Distinct Skolem-parameter tuples for which a game instance has a
    non-empty path, in first-play order. *)

val path_table : t -> string -> params:(string * Reldb.Value.t) list -> Reldb.Tuple.t list
(** The path table of one game instance, in play order, with the per-
    instance [order] column renumbered from 1 as in Figure 6. *)

val path_relation_name : string -> string
(** Name of the internal relation backing a game's path tables. *)

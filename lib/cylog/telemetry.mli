(** Engine telemetry: a metrics registry and structured tracing spans.

    The paper's central claim — that logic and incentive concerns can be
    separated and {e independently observed} — is only checkable if the
    runtime can explain itself. This module provides the two observation
    channels the engine, planner, lease runtime, quorum runtime and crowd
    simulator thread their instrumentation through:

    - {b Metrics}: a lightweight registry of named counters, gauges and
      fixed-bucket histograms. Counters under the journal-derived
      namespaces are recomputable from {!Cylog.Engine.events}, which is
      what makes checkpoint/restore reproduce identical registries (the
      invariant the telemetry differential tests pin down).
    - {b Tracing}: hierarchical spans with {e deterministic} identities —
      span ids are sequence counters and timestamps are the engine's
      logical clock, never wall time, so traces are byte-stable under
      [snapshot]/[restore] replay.

    Everything is engineered to cost (almost) nothing when unobserved:
    the default sink is {!Sink.null} (span entry is one pointer compare,
    no allocation) and {!Metrics.set_enabled}[ m false] turns every
    registry update into a single boolean test. *)

(** {1 Metrics} *)

module Metrics : sig
  type t

  val create : unit -> t
  (** Fresh, empty, enabled registry. *)

  val enabled : t -> bool

  val set_enabled : t -> bool -> unit
  (** With [false], every update below is a no-op (one boolean test) —
      the kill switch the null-sink overhead benchmark measures. Reads
      are unaffected. *)

  val incr : t -> ?by:int -> string -> unit
  (** Add [by] (default 1) to a counter, creating it at 0 first. *)

  val set_gauge : t -> string -> int -> unit
  (** Set a gauge to an absolute value. *)

  val observe : t -> string -> int -> unit
  (** Record a sample into a fixed-bucket histogram (bucket upper bounds
      1, 2, 5, 10, 25, 50, 100, 250, 1000, +inf). *)

  val counter : t -> string -> int
  (** Current counter value; 0 when never incremented. *)

  val gauge : t -> string -> int option

  val counters : t -> (string * int) list
  (** All counters, sorted by name. *)

  val gauges : t -> (string * int) list

  type histogram = {
    bounds : int array;  (** bucket upper bounds (inclusive) *)
    counts : int array;  (** [Array.length bounds + 1] cells; last = overflow *)
    sum : int;
    count : int;
  }

  val histograms : t -> (string * histogram) list

  val histogram : t -> string -> histogram option
  (** One histogram by name; [None] when nothing was ever observed
      under it. *)

  val quantile : histogram -> float -> float
  (** [quantile h q] is the interpolated [q]-quantile ([0. <= q <= 1.],
      clamped) of the samples [h] bucketed: the bucket containing rank
      [q * count] is found and the value interpolated linearly within its
      bounds. Samples in the overflow bucket report the last bound — a
      lower bound on the true quantile. [0.] when the histogram is empty.
      The bucket wire format is unchanged; this is a read-side accessor
      (how [:stats] and the campaign monitor print p50/p95/p99). *)

  val equal : t -> t -> bool
  (** Same counters, gauges and histograms (names and values). *)

  val merge : ?prefix:string -> into:t -> t -> unit
  (** Fold one registry into another — the fleet scatter-gather primitive.
      Registries have always been instantiable (one per engine), so N
      engine shards in one process never interleave counters; [merge] is
      how an observer combines them into one view without collisions.
      Counters are summed, gauges are summed, and histograms with equal
      bucket bounds are summed cell by cell (a histogram whose bounds
      disagree with an existing one under the same name is skipped —
      every registry in this codebase uses the default bounds). [prefix]
      namespaces every metric on the way in (e.g. ["shard3."]), so a
      per-shard view and an unprefixed fleet total can coexist in the
      same target. The source is never mutated; merging into a disabled
      registry is a no-op, and the single-registry write path is
      untouched. *)

  val to_json : t -> string
  (** The whole registry as one JSON object:
      [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable dump, sorted by name — the REPL's [:stats]. *)
end

(** {1 Tracing spans} *)

type span = {
  id : int;  (** sequence number, deterministic across replay *)
  parent : int;  (** enclosing span id; 0 at the root *)
  name : string;  (** e.g. [campaign], [round], [rule], [atom-match] *)
  started : int;  (** logical clock when the span was entered *)
  ended : int;  (** logical clock when the span was closed *)
  attrs : (string * string) list;
}

val span_to_json : span -> string
(** One span as a single JSON line (no trailing newline). *)

val json_escape : string -> string
(** The string escaper behind {!Metrics.to_json} and {!span_to_json},
    exported so other JSON surfaces (e.g. the quality report) emit the
    same dialect instead of growing a second printer. *)

module Sink : sig
  type t

  val null : t
  (** Discards everything; the default. Checked by pointer identity on
      the hot path, so instrumentation under [null] never allocates. *)

  val is_null : t -> bool

  val ring : int -> t
  (** In-memory ring buffer keeping the last [capacity] spans. *)

  val contents : t -> span list
  (** Buffered spans, chronological; [[]] for non-ring sinks. *)

  val jsonl : out_channel -> t
  (** Writes each completed span as one JSON line. The caller owns the
      channel (flush/close). *)

  val fn : (span -> unit) -> t
  (** Custom callback per completed span. *)
end

(** {1 The telemetry handle}

    One per engine. Spans form a stack: [enter] pushes, [exit] pops and
    emits to the sink; [emit] records a point span (same start and end
    clock) parented to the innermost open span. *)

type t

type handle
(** An open span. {!none} is the inert handle returned while the sink is
    {!Sink.null}; exiting it is a no-op. *)

val none : handle

val create : ?sink:Sink.t -> unit -> t
(** Fresh telemetry: given sink (default {!Sink.null}) and a fresh,
    enabled metrics registry. *)

val metrics : t -> Metrics.t
val sink : t -> Sink.t

val set_sink : t -> Sink.t -> unit
(** Swap the sink. Do not swap while spans are open (open spans keep
    stack hygiene but may be emitted inconsistently). *)

val tracing : t -> bool
(** [sink t != Sink.null] — instrumentation sites use this to skip
    attribute construction entirely when nobody is listening. *)

val enter : t -> ?attrs:(string * string) list -> string -> clock:int -> handle
(** Open a span. Under {!Sink.null} returns {!none} without consuming a
    span id. *)

val exit : t -> ?attrs:(string * string) list -> ?discard:bool ->
  handle -> clock:int -> unit
(** Close a span, appending [attrs] to those given at {!enter}, and emit
    it — unless [discard] (the span turned out to be empty noise; its id
    stays consumed, keeping ids deterministic). *)

val emit : t -> ?parent:handle -> ?attrs:(string * string) list -> string ->
  clock:int -> unit
(** A point span: entered and exited at the same clock. [parent]
    overrides the innermost open span as the parent — how events about a
    long-lived task (leases, votes) attach to its "task" span after the
    creating rule's span closed. *)

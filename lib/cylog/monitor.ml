(* The campaign monitor: task-lifecycle latency tracing, per-round
   cost/latency/quality time series, and budget/SLO watchdogs.

   Everything in here is a single fold over the engine's event log —
   [of_events config events] is the definition of the monitor's state,
   and the live monitor inside an engine merely applies the same
   [observe] step incrementally (the PR-3 derivability contract, extended
   from counters to series points and alert firings). The watchdogs
   themselves run only on the live path ([check], called by
   [Engine.monitor_sample]); their verdicts are journalled as
   [Alert_fired] effects carrying the full evidence, so the fold never
   re-decides an alert — it reads it back, exactly like
   [Adaptive_resolved]. *)

type config = {
  series_capacity : int;
  cost_per_answer : int;
  max_budget : int option;
  certified_bound : int option;
      (* the static budget certificate's total-answer bound in budget
         units; [Engine.set_monitor] fills it from [Analysis] when no
         explicit [max_budget] is given, and the budget watchdog falls
         back to it *)
  max_p99_latency : int option;
  min_agreement_pct : int option;
  max_dead_letter_pct : int option;
  stall_samples : int option;
}

let default_config =
  {
    series_capacity = 256;
    cost_per_answer = 1;
    max_budget = None;
    certified_bound = None;
    max_p99_latency = None;
    min_agreement_pct = None;
    max_dead_letter_pct = None;
    stall_samples = None;
  }

type point = {
  p_round : int;
  p_clock : int;
  p_spent : int;
  p_answers : int;
  p_pending : int;
  p_oldest_age : int;  (* 0 when nothing is pending *)
  p_e2e_p50 : float;
  p_e2e_p95 : float;
  p_e2e_p99 : float;
  p_agreement_pct : int;  (* -1: no agreement sample yet *)
  p_posterior_pct : int;  (* -1: no adaptive resolution yet *)
  p_dead_letter_pct : int;  (* of retired tasks; 0 when none retired *)
}

type firing = { at_round : int; at_clock : int; alert : Event.alert }

(* Per-pending-task lifecycle cell, carried from Open_created to the
   retiring event. *)
type cell = {
  created : int;
  mutable first_answer : int option;
  mutable votes : int;
}

(* Fixed-capacity ring over series points; the array is allocated on the
   first push so an installed-but-never-sampled monitor stays cheap. *)
type ring = {
  r_cap : int;
  mutable r_arr : point array option;
  mutable r_next : int;
  mutable r_len : int;
  mutable r_dropped : int;
}

type t = {
  config : config;
  hists : Telemetry.Metrics.t;  (* private registry: lifecycle histograms *)
  live : (Event.open_id, cell) Hashtbl.t;
  ballots : (Event.open_id, (string * Reldb.Value.t) list list) Hashtbl.t;
  mutable samples : int;
  mutable answers : int;
  mutable payoff_spent : int;  (* sum of positive awarded deltas *)
  mutable resolved : int;
  mutable dead : int;
  mutable votes_agree : int;
  mutable votes_total : int;
  mutable posterior_sum : int;
  mutable posterior_n : int;
  mutable last_progress : int;  (* answers+resolved+dead at last sample *)
  mutable idle_samples : int;
  series : ring;
  mutable firings : firing list;  (* newest first *)
  mutable latched : string list;  (* alert kinds already fired *)
}

let create config =
  {
    config;
    hists = Telemetry.Metrics.create ();
    live = Hashtbl.create 32;
    ballots = Hashtbl.create 16;
    samples = 0;
    answers = 0;
    payoff_spent = 0;
    resolved = 0;
    dead = 0;
    votes_agree = 0;
    votes_total = 0;
    posterior_sum = 0;
    posterior_n = 0;
    last_progress = 0;
    idle_samples = 0;
    series =
      { r_cap = max 1 config.series_capacity;
        r_arr = None;
        r_next = 0;
        r_len = 0;
        r_dropped = 0 };
    firings = [];
    latched = [];
  }

let config t = t.config

(* --- Derived readings -------------------------------------------------------- *)

let spent t = t.payoff_spent + (t.answers * t.config.cost_per_answer)
let answers t = t.answers
let pending t = Hashtbl.length t.live
let retired t = t.resolved + t.dead

let agreement_pct t =
  if t.votes_total = 0 then -1 else 100 * t.votes_agree / t.votes_total

let posterior_pct t = if t.posterior_n = 0 then -1 else t.posterior_sum / t.posterior_n

let dead_letter_pct t =
  let r = retired t in
  if r = 0 then 0 else 100 * t.dead / r

let oldest_age t ~clock =
  Hashtbl.fold (fun _ c acc -> max acc (clock - c.created)) t.live 0

let e2e_hist = "lifecycle.end_to_end"

let quantile t name q =
  match Telemetry.Metrics.histogram t.hists name with
  | Some h -> Telemetry.Metrics.quantile h q
  | None -> 0.0

let histograms t = Telemetry.Metrics.histograms t.hists

let points t =
  let r = t.series in
  match r.r_arr with
  | None -> []
  | Some arr ->
      let start = (r.r_next - r.r_len + r.r_cap) mod r.r_cap in
      List.init r.r_len (fun i -> arr.((start + i) mod r.r_cap))

let dropped_points t = t.series.r_dropped
let firings t = List.rev t.firings
let samples t = t.samples

(* --- The watchdogs (live path only) ------------------------------------------ *)

(* Each alert kind fires at most once per monitor lifetime: [check]
   consults the latch, and the latch is set when the journalled
   [Alert_fired] flows back through [observe] — so a recount latches in
   exactly the same place. *)
let check t =
  let out = ref [] in
  let fire key alert = if not (List.mem key t.latched) then out := alert :: !out in
  (* An explicit budget wins; without one, the statically certified bound
     is the spend ceiling — crossing it means either the analysis is
     unsound or the host is spending outside the program. *)
  let budget_limit =
    match t.config.max_budget with
    | Some _ as b -> b
    | None -> t.config.certified_bound
  in
  (match budget_limit with
  | Some budget when spent t > budget ->
      fire "budget" (Event.Budget_exceeded { spent = spent t; budget })
  | _ -> ());
  (match t.config.max_p99_latency with
  | Some limit -> (
      match Telemetry.Metrics.histogram t.hists e2e_hist with
      | Some h when h.count > 0 ->
          let p99 = Telemetry.Metrics.quantile h 0.99 in
          if p99 > float_of_int limit then
            fire "latency"
              (Event.Latency_breached
                 { p99 = int_of_float (Float.round p99); limit })
      | _ -> ())
  | None -> ());
  (match t.config.min_agreement_pct with
  | Some floor when t.votes_total > 0 && agreement_pct t < floor ->
      fire "agreement" (Event.Agreement_low { pct = agreement_pct t; floor })
  | _ -> ());
  (match t.config.max_dead_letter_pct with
  | Some ceiling when retired t > 0 && dead_letter_pct t > ceiling ->
      fire "dead_letter" (Event.Dead_letters_high { pct = dead_letter_pct t; ceiling })
  | _ -> ());
  (match t.config.stall_samples with
  | Some limit ->
      (* Prospective idle count: [check] runs before the sample event is
         observed, so mirror the update [observe] will apply. *)
      let progress = t.answers + t.resolved + t.dead in
      let idle =
        if progress = t.last_progress && pending t > 0 then t.idle_samples + 1 else 0
      in
      if idle >= limit then fire "stall" (Event.Stalled { samples = idle; limit })
  | None -> ());
  List.rev !out

(* --- The fold ---------------------------------------------------------------- *)

let retire t id ~clock ~resolved =
  match Hashtbl.find_opt t.live id with
  | None -> ()
  | Some c ->
      Hashtbl.remove t.live id;
      let m = t.hists in
      let e2e = clock - c.created in
      Telemetry.Metrics.observe m e2e_hist e2e;
      (if resolved then begin
         Telemetry.Metrics.observe m "lifecycle.resolve" e2e;
         (* A non-quorum answer both first-answers and retires the task in
            one event; count it as an (instant) first answer so
            time-to-first-answer stays meaningful without quorums. *)
         let first = match c.first_answer with Some f -> f | None -> clock in
         if c.first_answer = None then
           Telemetry.Metrics.observe m "lifecycle.first_answer" (clock - c.created);
         Telemetry.Metrics.observe m "lifecycle.decision" (clock - first)
       end
       else begin
         Telemetry.Metrics.observe m "lifecycle.dead_letter" e2e;
         match c.first_answer with
         | Some f -> Telemetry.Metrics.observe m "lifecycle.decision" (clock - f)
         | None -> ()
       end);
      if resolved then t.resolved <- t.resolved + 1 else t.dead <- t.dead + 1

let push_point t p =
  let r = t.series in
  let arr =
    match r.r_arr with
    | Some a -> a
    | None ->
        let a = Array.make r.r_cap p in
        r.r_arr <- Some a;
        a
  in
  arr.(r.r_next) <- p;
  r.r_next <- (r.r_next + 1) mod r.r_cap;
  if r.r_len < r.r_cap then r.r_len <- r.r_len + 1 else r.r_dropped <- r.r_dropped + 1

let sample_point t ~round ~clock =
  {
    p_round = round;
    p_clock = clock;
    p_spent = spent t;
    p_answers = t.answers;
    p_pending = pending t;
    p_oldest_age = oldest_age t ~clock;
    p_e2e_p50 = quantile t e2e_hist 0.50;
    p_e2e_p95 = quantile t e2e_hist 0.95;
    p_e2e_p99 = quantile t e2e_hist 0.99;
    p_agreement_pct = agreement_pct t;
    p_posterior_pct = posterior_pct t;
    p_dead_letter_pct = dead_letter_pct t;
  }

let observe t (ev : Event.event) =
  let clock = ev.clock in
  (match ev.by_human with Some _ -> t.answers <- t.answers + 1 | None -> ());
  (* Same vote-vs-resolution recognition as the engine's counting fold:
     a banked vote alone means the task stays pending; a [Vote_recorded]
     riding with any other effect is the quorum resolution event. *)
  let votes = ref 0 and others = ref 0 and voted_id = ref None in
  List.iter
    (fun (eff : Event.effect) ->
      match eff with
      | Open_created id ->
          incr others;
          Hashtbl.replace t.live id { created = clock; first_answer = None; votes = 0 }
      | Vote_recorded (id, n) ->
          incr votes;
          voted_id := Some id;
          (match Hashtbl.find_opt t.live id with
          | Some c ->
              if c.first_answer = None then begin
                c.first_answer <- Some clock;
                Telemetry.Metrics.observe t.hists "lifecycle.first_answer"
                  (clock - c.created)
              end;
              c.votes <- n
          | None -> ())
      | Dead_lettered (id, _) ->
          Hashtbl.remove t.ballots id;
          retire t id ~clock ~resolved:false
      | Resolved id ->
          incr others;
          retire t id ~clock ~resolved:true
      | Adaptive_resolved { posterior_pct; _ } ->
          t.posterior_sum <- t.posterior_sum + posterior_pct;
          t.posterior_n <- t.posterior_n + 1
      | Awarded deltas ->
          incr others;
          List.iter
            (fun (_, d) ->
              match d with
              | Reldb.Value.Int d when d > 0 -> t.payoff_spent <- t.payoff_spent + d
              | _ -> ())
            deltas
      | Sampled { round } ->
          let progress = t.answers + t.resolved + t.dead in
          if progress = t.last_progress && pending t > 0 then
            t.idle_samples <- t.idle_samples + 1
          else t.idle_samples <- 0;
          t.last_progress <- progress;
          t.samples <- t.samples + 1;
          push_point t (sample_point t ~round ~clock)
      | Alert_fired { round; alert } ->
          let key = Event.alert_key alert in
          if not (List.mem key t.latched) then t.latched <- t.latched @ [ key ];
          t.firings <- { at_round = round; at_clock = clock; alert } :: t.firings
      | Inserted _ | Updated _ | Deleted _ | No_effect -> incr others)
    ev.effects;
  match !voted_id with
  | Some id when !others = 0 ->
      if ev.valuation <> [] then
        Hashtbl.replace t.ballots id
          (ev.valuation :: Option.value (Hashtbl.find_opt t.ballots id) ~default:[])
  | Some id ->
      (* Quorum resolution: agreement of earlier ballots with the chosen
         tuple, then the task retires as resolved. *)
      (match (ev.valuation, Hashtbl.find_opt t.ballots id) with
      | (_ :: _ as chosen), Some ballots ->
          List.iter
            (fun ballot ->
              List.iter
                (fun (attr, v) ->
                  match List.assoc_opt attr ballot with
                  | Some b ->
                      t.votes_total <- t.votes_total + 1;
                      if Reldb.Value.equal b v then t.votes_agree <- t.votes_agree + 1
                  | None -> ())
                chosen)
            ballots
      | _ -> ());
      Hashtbl.remove t.ballots id;
      retire t id ~clock ~resolved:true
  | None -> ()

let of_events config events =
  let t = create config in
  List.iter (observe t) events;
  t

(* --- The comparable view ------------------------------------------------------ *)

type view = {
  v_samples : int;
  v_spent : int;
  v_answers : int;
  v_resolved : int;
  v_dead : int;
  v_pending : (Event.open_id * int) list;
  v_votes_agree : int;
  v_votes_total : int;
  v_posterior_sum : int;
  v_posterior_n : int;
  v_histograms : (string * Telemetry.Metrics.histogram) list;
  v_points : point list;
  v_dropped_points : int;
  v_firings : firing list;
  v_latched : string list;
}

let view t =
  {
    v_samples = t.samples;
    v_spent = spent t;
    v_answers = t.answers;
    v_resolved = t.resolved;
    v_dead = t.dead;
    v_pending =
      Hashtbl.fold (fun id c acc -> (id, c.created) :: acc) t.live []
      |> List.sort compare;
    v_votes_agree = t.votes_agree;
    v_votes_total = t.votes_total;
    v_posterior_sum = t.posterior_sum;
    v_posterior_n = t.posterior_n;
    v_histograms = histograms t;
    v_points = points t;
    v_dropped_points = dropped_points t;
    v_firings = firings t;
    v_latched = List.sort compare t.latched;
  }

(* --- Rendering ---------------------------------------------------------------- *)

let opt_int = function None -> "null" | Some v -> string_of_int v
let pct_json v = if v < 0 then "null" else string_of_int v

let config_json c =
  Printf.sprintf
    "{\"series_capacity\":%d,\"cost_per_answer\":%d,\"max_budget\":%s,\
     \"certified_bound\":%s,\"max_p99_latency\":%s,\"min_agreement_pct\":%s,\
     \"max_dead_letter_pct\":%s,\"stall_samples\":%s}"
    c.series_capacity c.cost_per_answer (opt_int c.max_budget)
    (opt_int c.certified_bound) (opt_int c.max_p99_latency)
    (opt_int c.min_agreement_pct) (opt_int c.max_dead_letter_pct)
    (opt_int c.stall_samples)

let point_json p =
  Printf.sprintf
    "{\"round\":%d,\"clock\":%d,\"spent\":%d,\"answers\":%d,\"pending\":%d,\
     \"oldest_age\":%d,\"e2e_p50\":%.2f,\"e2e_p95\":%.2f,\"e2e_p99\":%.2f,\
     \"agreement_pct\":%s,\"posterior_pct\":%s,\"dead_letter_pct\":%d}"
    p.p_round p.p_clock p.p_spent p.p_answers p.p_pending p.p_oldest_age p.p_e2e_p50
    p.p_e2e_p95 p.p_e2e_p99 (pct_json p.p_agreement_pct) (pct_json p.p_posterior_pct)
    p.p_dead_letter_pct

let firing_json f =
  let observed, limit = Event.alert_numbers f.alert in
  Printf.sprintf
    "{\"round\":%d,\"clock\":%d,\"kind\":\"%s\",\"observed\":%d,\"limit\":%d,\
     \"message\":\"%s\"}"
    f.at_round f.at_clock
    (Telemetry.json_escape (Event.alert_key f.alert))
    observed limit
    (Telemetry.json_escape (Event.alert_to_string f.alert))

let hist_json h =
  Printf.sprintf
    "{\"count\":%d,\"sum\":%d,\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f}"
    h.Telemetry.Metrics.count h.Telemetry.Metrics.sum
    (Telemetry.Metrics.quantile h 0.50)
    (Telemetry.Metrics.quantile h 0.95)
    (Telemetry.Metrics.quantile h 0.99)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"config\":";
  Buffer.add_string buf (config_json t.config);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"totals\":{\"samples\":%d,\"spent\":%d,\"answers\":%d,\"resolved\":%d,\
        \"dead_lettered\":%d,\"pending\":%d,\"agreement_pct\":%s,\
        \"posterior_pct\":%s,\"dead_letter_pct\":%d}"
       t.samples (spent t) t.answers t.resolved t.dead (pending t)
       (pct_json (agreement_pct t))
       (pct_json (posterior_pct t))
       (dead_letter_pct t));
  Buffer.add_string buf ",\"lifecycle\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (Telemetry.json_escape name) (hist_json h)))
    (histograms t);
  Buffer.add_string buf "},\"series\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (point_json p))
    (points t);
  Buffer.add_string buf
    (Printf.sprintf "],\"dropped_points\":%d,\"alerts\":[" (dropped_points t));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (firing_json f))
    (firings t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* One JSON object per line: every series point, then every alert, each
   tagged with a ["type"] discriminator — the streaming-friendly dump
   behind [--monitor-out file.jsonl]. *)
let to_jsonl t =
  let buf = Buffer.create 1024 in
  let tagged tag json =
    Buffer.add_string buf "{\"type\":\"";
    Buffer.add_string buf tag;
    Buffer.add_string buf "\",";
    Buffer.add_string buf (String.sub json 1 (String.length json - 1));
    Buffer.add_char buf '\n'
  in
  List.iter (fun p -> tagged "point" (point_json p)) (points t);
  List.iter (fun f -> tagged "alert" (firing_json f)) (firings t);
  Buffer.contents buf

let pp fmt t =
  let pct v = if v < 0 then "-" else string_of_int v ^ "%" in
  (match t.config.certified_bound with
  | Some b ->
      Format.fprintf fmt "monitor: %d samples, %d answers, spent %d / certified %d@."
        t.samples t.answers (spent t) b
  | None ->
      Format.fprintf fmt "monitor: %d samples, %d answers, spent %d@." t.samples
        t.answers (spent t));
  Format.fprintf fmt "  tasks: %d resolved, %d dead-lettered, %d pending@."
    t.resolved t.dead (pending t);
  Format.fprintf fmt "  quality: agreement %s, posterior %s, dead-letter %d%%@."
    (pct (agreement_pct t))
    (pct (posterior_pct t))
    (dead_letter_pct t);
  List.iter
    (fun (name, h) ->
      if h.Telemetry.Metrics.count > 0 then
        Format.fprintf fmt "  %-24s count=%d p50=%.1f p95=%.1f p99=%.1f@." name
          h.Telemetry.Metrics.count
          (Telemetry.Metrics.quantile h 0.50)
          (Telemetry.Metrics.quantile h 0.95)
          (Telemetry.Metrics.quantile h 0.99))
    (histograms t);
  let ps = points t in
  let n = List.length ps in
  let tail = if n > 5 then List.filteri (fun i _ -> i >= n - 5) ps else ps in
  if tail <> [] then begin
    Format.fprintf fmt "  series (last %d of %d):@." (List.length tail) n;
    List.iter
      (fun p ->
        Format.fprintf fmt
          "    round %-4d spent=%-5d answers=%-4d pending=%-3d p99=%.1f dead=%d%%@."
          p.p_round p.p_spent p.p_answers p.p_pending p.p_e2e_p99 p.p_dead_letter_pct)
      tail
  end;
  if t.firings = [] then Format.fprintf fmt "  alerts: none@."
  else
    List.iter
      (fun f ->
        Format.fprintf fmt "  ALERT [round %d] %s@." f.at_round
          (Event.alert_to_string f.alert))
      (firings t)

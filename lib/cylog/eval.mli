(** Body evaluation: expression evaluation, atom matching and valuation
    enumeration in conflict-resolution order.

    Enumeration follows the paper's tie-breaking among valuations of one
    rule: atoms are evaluated left to right and the instance valued by
    tuples at the earliest rows wins — i.e. valuations are produced in
    lexicographic order of the row indices chosen for each positive atom. *)

exception Error of string
(** A body is malformed with respect to the current valuation (unbound
    variable in a negation, comparison of incomparable values, ...). *)

val eval_expr : Builtin.registry -> Binding.t -> Ast.expr -> Reldb.Value.t
(** Evaluate a closed expression. @raise Error on unbound variables. *)

val try_eval_expr : Builtin.registry -> Binding.t -> Ast.expr -> Reldb.Value.t option
(** Like {!eval_expr} but [None] when a variable is unbound. *)

val match_atom : Binding.t -> Ast.atom -> Reldb.Tuple.t ->
  builtins:Builtin.registry -> Binding.t option
(** [match_atom env atom tuple] extends [env] by matching [tuple] against
    [atom]'s argument list, or returns [None] on mismatch. Binding rules:
    bare attribute [a] binds variable [a]; [a:v] with variable [v] binds
    [v]; [a:e] with a closed expression tests equality and additionally
    binds variable [a] to the tuple's value when [a] is unbound (so
    [Rules(..., attr:"weather", ...)] makes [attr] available to the
    head). *)

val check_filter : Builtin.registry -> Reldb.Database.t -> Binding.t ->
  Ast.literal -> [ `Pass of Binding.t | `Fail ]
(** Evaluate a non-branching literal: [Neg], [Call], or [Cmp]. An [Eq]
    comparison with exactly one unbound plain-variable side binds it.
    @raise Error if applied to [Pos], or on unbound variables. *)

type matched = {
  env : Binding.t;
  support : (string * int * int) list;
      (** (relation, row, row version) per positive atom, in body order *)
}

val support_key : matched -> (int * int) list
(** The conflict-resolution ordering key of an instance: its support
    [(row, version)] pairs in body order. Left-to-right enumeration
    produces instances in ascending key order, so the paper's
    earliest-rows winner is the minimum under this key. *)

val compare_matched : matched -> matched -> int
(** Compare instances by {!support_key}. *)

val merge_matched : matched list -> matched list -> matched list
(** Merge two key-ascending instance lists into one, preserving order —
    the operation that folds a delta scan's discoveries into an engine's
    pending set while keeping its head the conflict-resolution winner. *)

(** Row restriction for one positive atom during enumeration — the
    building block of seminaive (delta) evaluation. *)
type row_range =
  | All
  | Below of int  (** rows with index < the watermark *)
  | Exactly of int  (** one specific row *)

val enumerate : ?plan:(int -> row_range) ->
  ?reordered:Ast.literal list * int array ->
  Builtin.registry -> Reldb.Database.t -> Ast.literal list ->
  init:Binding.t -> f:(matched -> [ `Stop | `Continue ]) -> unit
(** Enumerate the valuations of a body over the database, calling [f] on
    each. Relations absent from the database are treated as empty. [plan]
    restricts the rows each positive atom (numbered left to right from 0
    {e in the original body}) may use; default unrestricted.

    Without [reordered], atoms are joined left to right and valuations are
    produced in conflict-resolution order (lexicographic in the row indices
    chosen per positive atom). With [reordered:(literals, order)] — a
    {!Planner.t}'s reordering of the body, [order] mapping evaluation
    position to original positive-atom position — atoms are joined in the
    planned order instead, but each full match is {e replayed} over the
    original body, so [f] observes exactly the environments and supports
    left-to-right evaluation would have produced. Only the order in which
    [f] receives valuations may differ; callers needing the
    conflict-resolution winner must select the minimal support key
    themselves. *)

val rows_scanned : unit -> int
(** Process-wide count of candidate rows handed to the atom matcher since
    the last {!reset_rows_scanned} — the deterministic work measure used by
    the joins benchmark and its regression smoke test. *)

val reset_rows_scanned : unit -> unit
(** Reset the {!rows_scanned} counter. *)

val split_tail : Ast.literal list -> Ast.literal list * Ast.literal list
(** Split a body into the prefix ending at the last positive atom and the
    trailing filter literals. The engine enumerates the prefix and
    evaluates the tail once per instance (the paper's Figure 13 trace:
    an instance is "evaluated" once even when a trailing negation
    rejects it). *)

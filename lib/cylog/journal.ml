type fsync_policy = Always | Every_n of int | Never

type config = {
  fsync : fsync_policy;
  segment_bytes : int;
  compact_every : int option;
}

let default_config = { fsync = Always; segment_bytes = 1 lsl 20; compact_every = None }

type kind = Genesis | Entry | Snapshot

type record = { kind : kind; payload : string }

type error =
  | No_segments of string
  | No_valid_base of string
  | Missing_segment of { dir : string; index : int }
  | Corrupt_record of { segment : string; offset : int; reason : string }
  | Unsupported_version of { segment : string; offset : int; version : int }
  | Journal_exists of string

exception Error of error

let error_to_string = function
  | No_segments dir -> Printf.sprintf "%s: no journal segments" dir
  | No_valid_base dir ->
      Printf.sprintf "%s: no segment holds a durable genesis or snapshot record" dir
  | Missing_segment { dir; index } ->
      Printf.sprintf "%s: segment %d is missing from the sequence" dir index
  | Corrupt_record { segment; offset; reason } ->
      Printf.sprintf "%s: corrupt record at offset %d: %s" segment offset reason
  | Unsupported_version { segment; offset; version } ->
      Printf.sprintf "%s: record at offset %d has unsupported format version %d"
        segment offset version
  | Journal_exists dir ->
      Printf.sprintf "%s: journal already exists (recover it instead of overwriting)" dir

(* --- Framing ---------------------------------------------------------------- *)

let magic = "CYLOG-WAL/1\n"
let header_len = 16
let record_version = 1

let put_u32le b n =
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff))

let get_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let crc_int c = Int32.to_int c land 0xFFFFFFFF

let segment_header index =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  put_u32le b index;
  Buffer.contents b

let header_valid contents index =
  String.length contents >= header_len
  && String.sub contents 0 (String.length magic) = magic
  && get_u32le contents 12 = index

let kind_byte = function Genesis -> 0 | Entry -> 1 | Snapshot -> 2

let encode kind payload =
  let plen = String.length payload in
  let body = Bytes.create (2 + plen) in
  Bytes.set body 0 (Char.chr record_version);
  Bytes.set body 1 (Char.chr (kind_byte kind));
  Bytes.blit_string payload 0 body 2 plen;
  let body = Bytes.unsafe_to_string body in
  let b = Buffer.create (8 + 2 + plen) in
  put_u32le b (2 + plen);
  put_u32le b (crc_int (Storage.crc32 body));
  Buffer.add_string b body;
  Buffer.contents b

(* How a sequential parse of a segment's record run ends. [Torn] means the
   bytes from [offset] on do not frame a checksum-valid record — truncatable
   when they are the tail of the final segment, fatal anywhere else.
   [Bad_version] and [Bad_kind] are checksum-valid and therefore never
   explainable as a torn write; they are fatal everywhere. *)
type parse_end =
  | Clean
  | Torn of { offset : int; reason : string }
  | Bad_version of { offset : int; version : int }
  | Bad_kind of { offset : int; byte : int }

(* One record starting at [pos]: the parsed record and the next offset,
   or how the run ends there. Base selection during recovery probes only
   the first record of a candidate segment, so the step is exposed
   separately from the full scan. *)
type parse_step = Record of record * int | Run_end of parse_end

let parse_record contents pos =
  let len = String.length contents in
  if pos = len then Run_end Clean
  else if len - pos < 8 then
    Run_end (Torn { offset = pos; reason = "incomplete record frame" })
  else
    let rlen = get_u32le contents pos in
    if rlen < 2 then
      Run_end (Torn { offset = pos; reason = "impossible record length" })
    else if pos + 8 + rlen > len then
      Run_end (Torn { offset = pos; reason = "record extends past end of segment" })
    else
      let stored = get_u32le contents (pos + 4) in
      let actual = crc_int (Storage.crc32_sub contents ~pos:(pos + 8) ~len:rlen) in
      if stored <> actual then
        Run_end (Torn { offset = pos; reason = "checksum mismatch" })
      else
        let version = Char.code contents.[pos + 8] in
        if version <> record_version then
          Run_end (Bad_version { offset = pos; version })
        else
          let kind =
            match Char.code contents.[pos + 9] with
            | 0 -> Some Genesis
            | 1 -> Some Entry
            | 2 -> Some Snapshot
            | _ -> None
          in
          match kind with
          | None ->
              Run_end (Bad_kind { offset = pos; byte = Char.code contents.[pos + 9] })
          | Some kind ->
              let payload = String.sub contents (pos + 10) (rlen - 2) in
              Record ({ kind; payload }, pos + 8 + rlen)

let parse_records contents =
  let rec go pos acc =
    match parse_record contents pos with
    | Record (r, next) -> go next (r :: acc)
    | Run_end ending -> (List.rev acc, ending)
  in
  go header_len []

(* --- Handle ----------------------------------------------------------------- *)

type t = {
  jdir : string;
  cfg : config;
  storage : (module Storage.S);
  mutable seg : int;
  mutable seg_bytes : int;
  mutable unsynced : int;  (* appends not yet covered by an fsync *)
  mutable since_snapshot : int;
  mutable live_segments : int list;  (* ascending; last = seg *)
  mutable n_appends : int;
  mutable n_fsyncs : int;
  mutable n_dir_fsyncs : int;
  mutable n_rotations : int;
  mutable n_compactions : int;
  mutable tel : (Telemetry.t * (unit -> int)) option;
}

let seg_name index = Printf.sprintf "wal-%08d.seg" index

let seg_index name =
  if String.length name = 16
     && String.sub name 0 4 = "wal-"
     && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 8)
  else None

let seg_path t index = Filename.concat t.jdir (seg_name index)

let dir t = t.jdir
let config t = t.cfg

let set_telemetry t tel ~clock = t.tel <- Some (tel, clock)

let count t name =
  match t.tel with
  | Some (tel, _) -> Telemetry.Metrics.incr (Telemetry.metrics tel) name
  | None -> ()

let span t name attrs =
  match t.tel with
  | Some (tel, clock) when Telemetry.tracing tel ->
      Telemetry.emit tel ~attrs:(attrs ()) name ~clock:(clock ())
  | _ -> ()

let fsync_now t =
  let module St = (val t.storage) in
  St.fsync (seg_path t t.seg);
  t.unsynced <- 0;
  t.n_fsyncs <- t.n_fsyncs + 1;
  count t "journal.fsyncs"

(* File fsyncs cover data only: whenever the journal creates, renames or
   deletes a segment, the directory entry itself must be made durable,
   or a crash can lose a freshly rotated segment — or worse, persist the
   compaction deletes while losing the rename of their replacement. *)
let fsync_dir t =
  let module St = (val t.storage) in
  St.fsync_dir t.jdir;
  t.n_dir_fsyncs <- t.n_dir_fsyncs + 1;
  count t "journal.dir_fsyncs"

let sync t = if t.unsynced > 0 then fsync_now t

let after_append t =
  t.n_appends <- t.n_appends + 1;
  t.unsynced <- t.unsynced + 1;
  count t "journal.appends";
  match t.cfg.fsync with
  | Always -> fsync_now t
  | Every_n n -> if t.unsynced >= n then fsync_now t
  | Never -> ()

let rotate t =
  let module St = (val t.storage) in
  (* The outgoing segment is made fully durable before a successor exists,
     so recovery only ever needs to truncate the final segment. *)
  if t.unsynced > 0 then fsync_now t;
  St.close (seg_path t t.seg);
  t.seg <- t.seg + 1;
  St.append (seg_path t t.seg) (segment_header t.seg);
  (* The successor's directory entry must survive a crash before any
     record is acknowledged into it. *)
  fsync_dir t;
  t.seg_bytes <- header_len;
  t.live_segments <- t.live_segments @ [ t.seg ];
  t.n_rotations <- t.n_rotations + 1;
  count t "journal.segments.rotated";
  span t "journal-rotate" (fun () -> [ ("segment", string_of_int t.seg) ])

let append t payload =
  let module St = (val t.storage) in
  if t.seg_bytes >= t.cfg.segment_bytes then rotate t;
  let framed = encode Entry payload in
  St.append (seg_path t t.seg) framed;
  t.seg_bytes <- t.seg_bytes + String.length framed;
  t.since_snapshot <- t.since_snapshot + 1;
  span t "journal-append" (fun () ->
      [ ("segment", string_of_int t.seg); ("bytes", string_of_int (String.length framed)) ]);
  after_append t

let compact t snapshot =
  let module St = (val t.storage) in
  let target = t.seg + 1 in
  let tmp = seg_path t target ^ ".tmp" in
  St.delete tmp;
  St.append tmp (segment_header target ^ encode Snapshot snapshot);
  St.fsync tmp;
  t.n_fsyncs <- t.n_fsyncs + 1;
  count t "journal.fsyncs";
  St.close tmp;
  (* Commit point: after this rename *and* the directory fsync that makes
     it durable, the new segment is the recovery base whatever else
     happens; before that, the old segments still are. The directory must
     be synced before any deletion, or a crash could persist the unlinks
     of the old base while losing the rename of its replacement. *)
  St.rename tmp (seg_path t target);
  fsync_dir t;
  let old = t.live_segments in
  t.seg <- target;
  t.seg_bytes <- St.size (seg_path t target);
  t.unsynced <- 0;
  t.since_snapshot <- 0;
  t.live_segments <- [ target ];
  List.iter
    (fun i ->
      St.close (seg_path t i);
      St.delete (seg_path t i))
    old;
  (* Make the unlinks durable too — a crash between them and the next
     directory sync would only resurrect superseded segments (harmless
     for recovery), but bounding that window keeps disk usage honest. *)
  fsync_dir t;
  t.n_compactions <- t.n_compactions + 1;
  count t "journal.compactions";
  span t "journal-compact" (fun () ->
      [ ("segment", string_of_int target);
        ("bytes", string_of_int (String.length snapshot));
        ("folded_segments", string_of_int (List.length old)) ])

let close t =
  let module St = (val t.storage) in
  sync t;
  St.close (seg_path t t.seg)

let wants_compaction t =
  match t.cfg.compact_every with Some n -> t.since_snapshot >= n | None -> false

type stats = {
  appends : int;
  fsyncs : int;
  dir_fsyncs : int;
  rotations : int;
  compactions : int;
  entries_since_snapshot : int;
  segments : int list;
  tail_bytes : int;
}

let stats t =
  {
    appends = t.n_appends;
    fsyncs = t.n_fsyncs;
    dir_fsyncs = t.n_dir_fsyncs;
    rotations = t.n_rotations;
    compactions = t.n_compactions;
    entries_since_snapshot = t.since_snapshot;
    segments = t.live_segments;
    tail_bytes = t.seg_bytes;
  }

(* --- Open ------------------------------------------------------------------- *)

let make ?(config = default_config) ?(storage = (module Storage.Posix : Storage.S)) dir =
  {
    jdir = dir;
    cfg = config;
    storage;
    seg = 0;
    seg_bytes = 0;
    unsynced = 0;
    since_snapshot = 0;
    live_segments = [];
    n_appends = 0;
    n_fsyncs = 0;
    n_dir_fsyncs = 0;
    n_rotations = 0;
    n_compactions = 0;
    tel = None;
  }

let create ?config ?storage ~genesis dir =
  let t = make ?config ?storage dir in
  let module St = (val t.storage) in
  St.mkdirp dir;
  if List.exists (fun f -> seg_index f <> None) (St.list_dir dir) then
    raise (Error (Journal_exists dir));
  let bytes = segment_header 0 ^ encode Genesis genesis in
  St.append (seg_path t 0) bytes;
  (* Genesis durability is unconditional: a journal that exists can be
     recovered, whatever the fsync policy says about later entries. That
     takes both the data fsync and a directory fsync — without the
     latter, segment 0's entry itself can vanish on power loss. *)
  St.fsync (seg_path t 0);
  fsync_dir t;
  t.seg_bytes <- String.length bytes;
  t.live_segments <- [ 0 ];
  t.n_appends <- 1;
  t.n_fsyncs <- 1;
  t

(* --- Recovery --------------------------------------------------------------- *)

type recovery = {
  records : record list;
  base_segment : int;
  segments_scanned : int;
  truncated_bytes : int;
}

let recover ?config ?storage dir =
  let t = make ?config ?storage dir in
  let module St = (val t.storage) in
  let truncated = ref 0 in
  (* Staging files from an interrupted compaction never became part of the
     journal; discard them before anything else. *)
  List.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then St.delete (Filename.concat dir f))
    (St.list_dir dir);
  let segs =
    St.list_dir dir |> List.filter_map seg_index |> List.sort_uniq compare |> ref
  in
  if !segs = [] then raise (Error (No_segments dir));
  (* Trailing segments whose header never became durable are the remains of
     a crashed rotation: drop them, exposing the previous (fsynced-at-
     rotation) segment as the append tail. *)
  let rec drop_headerless () =
    match List.rev !segs with
    | last :: (_ :: _ as rest_rev) ->
        let path = seg_path t last in
        let contents = St.read_file path in
        if not (header_valid contents last) then begin
          truncated := !truncated + String.length contents;
          St.delete path;
          segs := List.rev rest_rev;
          drop_headerless ()
        end
    | _ -> ()
  in
  drop_headerless ();
  (* The recovery base is the greatest segment opening with a durable
     Genesis/Snapshot record; anything older is superseded. Only the
     first record of a candidate is probed — the full scan comes later,
     once, per surviving segment. *)
  let first_record_kind index =
    let contents = St.read_file (seg_path t index) in
    if not (header_valid contents index) then None
    else match parse_record contents header_len with
      | Record (r, _) -> Some r.kind
      | Run_end _ -> None
  in
  let base =
    match
      List.find_opt
        (fun i -> match first_record_kind i with
          | Some (Genesis | Snapshot) -> true
          | _ -> false)
        (List.rev !segs)
    with
    | Some b -> b
    | None -> raise (Error (No_valid_base dir))
  in
  List.iter (fun i -> if i < base then St.delete (seg_path t i)) !segs;
  let segs = List.filter (fun i -> i >= base) !segs in
  (* Contiguity from the base forward: a gap means records are gone for
     good, and silently skipping it would violate the prefix guarantee. *)
  List.iteri
    (fun k i ->
      if i <> base + k then raise (Error (Missing_segment { dir; index = base + k })))
    segs;
  let last = List.nth segs (List.length segs - 1) in
  (* Per-segment record runs, collected newest-first and concatenated
     once at the end — appending to the accumulated list per segment
     would make recovery quadratic in journal length. *)
  let seg_records = ref [] in
  let tail_bytes = ref 0 in
  List.iter
    (fun index ->
      let path = seg_path t index in
      let contents = St.read_file path in
      if not (header_valid contents index) then
        raise (Error (Corrupt_record { segment = path; offset = 0; reason = "bad segment header" }));
      let recs, ending = parse_records contents in
      (match ending with
      | Clean -> ()
      | Bad_version { offset; version } ->
          raise (Error (Unsupported_version { segment = path; offset; version }))
      | Bad_kind { offset; byte } ->
          raise
            (Error
               (Corrupt_record
                  { segment = path; offset; reason = Printf.sprintf "unknown record kind %d" byte }))
      | Torn { offset; reason } ->
          if index = last then begin
            (* The torn tail of the final segment is the crash frontier:
               cut back to the last valid record boundary. *)
            truncated := !truncated + (String.length contents - offset);
            St.truncate path offset
          end
          else raise (Error (Corrupt_record { segment = path; offset; reason })));
      if index = last then tail_bytes := St.size path;
      seg_records := recs :: !seg_records)
    segs;
  let records = List.concat (List.rev !seg_records) in
  (* Recovery's own mutations — dropped staging files, deleted headerless
     or superseded segments, the truncated tail — become durable here. *)
  fsync_dir t;
  t.seg <- last;
  t.seg_bytes <- !tail_bytes;
  t.live_segments <- segs;
  t.since_snapshot <-
    List.length (List.filter (fun r -> r.kind = Entry) records);
  ( t,
    {
      records;
      base_segment = base;
      segments_scanned = List.length segs;
      truncated_bytes = !truncated;
    } )

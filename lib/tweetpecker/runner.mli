(** End-to-end execution of one TweetPecker variant: build the CyLog
    program over a corpus, load the engine, attach the crowd, simulate to
    termination, and collect everything the Section 8 analyses need. *)

type outcome = {
  variant : Programs.variant;
  corpus : Tweets.Generator.tweet list;
  workers : Crowd.Worker.profile list;
  agreed : (int * string * string) list;
      (** (tweet id, attribute, value), in agreement order *)
  agreed_events : (int * int * string * string) list;
      (** (engine clock, tweet id, attribute, value), chronological *)
  rules_entered : (int * Tweets.Extraction.rule * string) list;
      (** (rid, rule, worker), in entry order — empty for VE/VE\/I *)
  extracts : (int * string * string * int) list;
      (** (tweet id, attribute, value, rid) machine extractions *)
  payoffs : (string * int) list;  (** accumulated score per worker *)
  sim : Crowd.Simulator.outcome;
  engine : Cylog.Engine.t;  (** final engine state, for further queries *)
  recoveries : Cylog.Engine.recovery_stats list;
      (** one entry per crash the campaign survived (storage faults
          only), in order *)
}

val default_workers : Programs.variant -> Crowd.Worker.profile list
(** The paper's five-person crowd per variant: diligent workers throughout;
    haphazard rule entry under VRE, the rational front-loaded strategy
    under VRE/I. *)

val run :
  ?seed:int -> ?corpus:Tweets.Generator.tweet list ->
  ?workers:Crowd.Worker.profile list -> ?use_delta:bool -> ?use_planner:bool ->
  ?lease:Cylog.Lease.config -> ?quorum:int ->
  ?policy:Cylog.Engine.quorum_policy ->
  ?monitor:Cylog.Monitor.config ->
  ?on_alert:(Cylog.Monitor.firing -> [ `Warn | `Pause | `Stop ]) ->
  ?faults:Crowd.Faults.fault list ->
  ?sink:Cylog.Telemetry.Sink.t -> ?journal:string ->
  ?journal_config:Cylog.Journal.config ->
  ?storage_faults:Crowd.Faults.storage_fault list -> Programs.variant -> outcome
(** Run a variant to termination (all (tweet, attribute) pairs agreed) on
    the standard corpus (463 tweets) with the default crowd. [use_delta]
    and [use_planner] are passed through to {!Cylog.Engine.load} —
    [~use_delta:false] selects the naive full-rescan evaluation strategy
    and [~use_planner:false] the reference left-to-right join order, for
    differential testing of semi-naive evaluation and the planner. [lease], [quorum] and [policy] are passed
    through to {!Crowd.Simulator.run} (lease runtime, redundant
    assignment, and adaptive quorum policies — [policy] wins over
    [quorum]); [monitor] and [on_alert] install the campaign monitor and
    its alert reactions (see {!Crowd.Simulator.run} — by default any
    watchdog firing stops the campaign with [`Alert]); [faults] wraps
    every worker with {!Crowd.Faults.inject} under the same [seed]. [sink] installs a tracing sink on the engine
    before the campaign starts (see {!Cylog.Telemetry.Sink}); the
    engine's metrics registry is reachable afterwards through
    [outcome.engine].

    [journal] runs the campaign with a durable WAL in that directory
    ({!Cylog.Engine.load}'s [?journal]); [journal_config] tunes it.
    [storage_faults] additionally swaps the journal's storage for the
    fault-injecting in-memory simulator under the given profile (seeded
    by the same [seed] as the crowd; see {!Crowd.Faults.storage_plan}) —
    when the storage crashes or fills mid-campaign, the runner recovers
    from the surviving byte image via {!Cylog.Engine.recover} and
    resumes the same crowd on the recovered engine, recording one
    {!Cylog.Engine.recovery_stats} per crash in [outcome.recoveries].
    Worker faults and storage faults compose in one run. *)

val completion : outcome -> float
(** Fraction of (tweet, attribute) pairs with an agreed value — 1.0 on a
    normally terminated run. *)

val agreed_lookup : outcome -> tweet_id:int -> attr:string -> string option
(** Agreed value accessor, as needed by confidence computations. *)

type outcome = {
  variant : Programs.variant;
  corpus : Tweets.Generator.tweet list;
  workers : Crowd.Worker.profile list;
  agreed : (int * string * string) list;
  agreed_events : (int * int * string * string) list;
  rules_entered : (int * Tweets.Extraction.rule * string) list;
  extracts : (int * string * string * int) list;
  payoffs : (string * int) list;
  sim : Crowd.Simulator.outcome;
  engine : Cylog.Engine.t;
  recoveries : Cylog.Engine.recovery_stats list;
}

let default_workers variant =
  let make =
    match variant with
    | Programs.VE | Programs.VEI -> Crowd.Worker.diligent ?rule_strategy:None
    | Programs.VRE ->
        Crowd.Worker.diligent
          ~rule_strategy:(Crowd.Worker.Haphazard { spread = 0.95; good_ratio = 0.55 })
    | Programs.VREI -> Crowd.Worker.rational ~rule_count:2
  in
  Crowd.Worker.crowd make 5

let str = function Reldb.Value.String s -> s | v -> Reldb.Value.to_display v
let int_of = function Reldb.Value.Int i -> i | _ -> -1

let collect_agreed db =
  match Reldb.Database.find db "Agreed" with
  | None -> []
  | Some rel ->
      List.map
        (fun t ->
          ( int_of (Reldb.Tuple.get_or_null t "tw"),
            str (Reldb.Tuple.get_or_null t "attr"),
            str (Reldb.Tuple.get_or_null t "value") ))
        (Reldb.Relation.tuples rel)

let collect_agreed_events engine =
  List.filter_map
    (fun (e : Cylog.Engine.event) ->
      List.find_map
        (function
          | Cylog.Engine.Inserted ("Agreed", t) ->
              Some
                ( e.clock,
                  int_of (Reldb.Tuple.get_or_null t "tw"),
                  str (Reldb.Tuple.get_or_null t "attr"),
                  str (Reldb.Tuple.get_or_null t "value") )
          | _ -> None)
        e.effects)
    (Cylog.Engine.events engine)

let collect_rules db =
  match Reldb.Database.find db "Rules" with
  | None -> []
  | Some rel ->
      List.map
        (fun t ->
          ( int_of (Reldb.Tuple.get_or_null t "rid"),
            {
              Tweets.Extraction.cond = str (Reldb.Tuple.get_or_null t "cond");
              attr = str (Reldb.Tuple.get_or_null t "attr");
              value = str (Reldb.Tuple.get_or_null t "value");
            },
            str (Reldb.Tuple.get_or_null t "p") ))
        (Reldb.Relation.tuples rel)

let collect_extracts db =
  match Reldb.Database.find db "Extracts" with
  | None -> []
  | Some rel ->
      List.map
        (fun t ->
          ( int_of (Reldb.Tuple.get_or_null t "tw"),
            str (Reldb.Tuple.get_or_null t "attr"),
            str (Reldb.Tuple.get_or_null t "value"),
            int_of (Reldb.Tuple.get_or_null t "rid") ))
        (Reldb.Relation.tuples rel)

let run ?(seed = 7) ?corpus ?workers ?use_delta ?use_planner ?lease ?quorum
    ?policy ?monitor ?on_alert ?faults ?sink ?journal ?journal_config
    ?storage_faults variant =
  let corpus = match corpus with Some c -> c | None -> Tweets.Generator.corpus () in
  let workers = match workers with Some w -> w | None -> default_workers variant in
  let names = List.map (fun (w : Crowd.Worker.profile) -> w.name) workers in
  let program = Programs.program variant ~corpus ~workers:names in
  (* Storage faults imply a WAL: without a named directory the journal
     lives at a virtual path inside the in-memory simulator. *)
  let sim_store =
    Option.map
      (fun sf ->
        ref (Cylog.Storage.Sim.create ~plan:(Crowd.Faults.storage_plan ~seed sf) ()))
      storage_faults
  in
  let jdir =
    match (journal, sim_store) with
    | Some dir, _ -> Some dir
    | None, Some _ -> Some "journal"
    | None, None -> None
  in
  let start_journal engine dir =
    match sim_store with
    | Some store ->
        Cylog.Engine.journal_start ?config:journal_config
          ~storage:(Cylog.Storage.Sim.storage !store) engine dir
    | None -> Cylog.Engine.journal_start ?config:journal_config engine dir
  in
  let engine = Cylog.Engine.load ?use_delta ?use_planner program in
  Option.iter (start_journal engine) jdir;
  (match sink with Some s -> Cylog.Engine.set_sink engine s | None -> ());
  let shared = Policies.prepare ~seed ~corpus ~workers in
  let sim_workers =
    List.map
      (fun (w : Crowd.Worker.profile) ->
        (Reldb.Value.String w.name, Policies.policy shared w))
      workers
  in
  let sim_workers =
    match faults with
    | Some fs -> Crowd.Faults.inject ~seed fs sim_workers
    | None -> sim_workers
  in
  let target = 2 * List.length corpus in
  let agreed_count engine =
    match Reldb.Database.find (Cylog.Engine.database engine) "Agreed" with
    | Some rel -> Reldb.Relation.cardinal rel
    | None -> 0
  in
  let stop engine = agreed_count engine >= target in
  let progress engine = float_of_int (agreed_count engine) /. float_of_int target in
  let recoveries = ref [] in
  (* With a fault-injecting store the campaign may die mid-round (storage
     crash, disk full). Recover from the byte image a real disk would
     present, re-attach the journal, and resume the same crowd on the
     recovered engine: answers made durable before the crash are never
     asked again. *)
  let rec drive attempts engine =
    try
      let sim =
        Crowd.Simulator.run ~seed ~progress ?lease ?quorum ?policy ?monitor
          ?on_alert ~stop ~workers:sim_workers engine
      in
      Option.iter Cylog.Journal.sync (Cylog.Engine.durable_journal engine);
      (engine, sim)
    with (Cylog.Storage.Crashed | Cylog.Storage.No_space) as exn -> (
      match (sim_store, jdir) with
      | Some store, Some dir when attempts < 5 ->
          let image =
            if Cylog.Storage.Sim.crashed !store then
              Cylog.Storage.Sim.after_crash !store
            else
              (* ENOSPC: nothing is lost, but the budget is lifted so the
                 reopened journal can keep appending. *)
              Cylog.Storage.Sim.copy !store
          in
          store := image;
          (* Keep the caller's journal config across the reopen — without
             it the recovered journal would silently revert to
             [Journal.default_config] (e.g. compaction disabled) for the
             rest of the campaign. *)
          let engine, stats =
            Cylog.Engine.recover ?config:journal_config
              ~storage:(Cylog.Storage.Sim.storage image) dir
          in
          (match sink with Some s -> Cylog.Engine.set_sink engine s | None -> ());
          recoveries := !recoveries @ [ stats ];
          drive (attempts + 1) engine
      | _ -> raise exn)
  in
  let engine, sim = drive 0 engine in
  let db = Cylog.Engine.database engine in
  {
    variant;
    corpus;
    workers;
    agreed = collect_agreed db;
    agreed_events = collect_agreed_events engine;
    rules_entered = collect_rules db;
    extracts = collect_extracts db;
    payoffs =
      List.map (fun (p, s) -> (str p, int_of s)) (Cylog.Engine.payoffs engine);
    sim;
    engine;
    recoveries = !recoveries;
  }

let completion o =
  float_of_int (List.length o.agreed) /. float_of_int (2 * List.length o.corpus)

let agreed_lookup o ~tweet_id ~attr =
  List.find_map
    (fun (tw, a, v) -> if tw = tweet_id && String.equal a attr then Some v else None)
    o.agreed
